/*! \file test_telemetry.cpp
 *  \brief Observability subsystem: spans, metrics, exports, and the
 *         pass manager's automatic cost recording.
 */
#include "pipeline/pass_manager.hpp"
#include "telemetry/metadata.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace qda;

/*! Enables recording for one test and restores the quiescent default. */
struct telemetry_fixture : ::testing::Test
{
  void SetUp() override
  {
    if ( !telemetry::compiled_in )
    {
      GTEST_SKIP() << "telemetry hooks compiled out (QDA_ENABLE_TELEMETRY=OFF)";
    }
    telemetry::tracer::instance().clear();
    telemetry::metrics_registry::instance().reset();
    telemetry::set_enabled( true );
  }

  void TearDown() override
  {
    telemetry::set_enabled( false );
    telemetry::tracer::instance().clear();
    telemetry::metrics_registry::instance().reset();
  }
};

/* ---- minimal recursive-descent JSON reader: enough to re-parse the
 * Chrome trace export and prove it is well-formed ---- */

struct json_cursor
{
  const std::string& text;
  size_t pos = 0u;

  void skip_ws()
  {
    while ( pos < text.size() && std::isspace( static_cast<unsigned char>( text[pos] ) ) )
    {
      ++pos;
    }
  }

  bool eat( char c )
  {
    skip_ws();
    if ( pos < text.size() && text[pos] == c )
    {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value()
  {
    skip_ws();
    if ( pos >= text.size() )
    {
      return false;
    }
    const char c = text[pos];
    if ( c == '{' )
    {
      return parse_object();
    }
    if ( c == '[' )
    {
      return parse_array();
    }
    if ( c == '"' )
    {
      return parse_string();
    }
    if ( text.compare( pos, 4, "true" ) == 0 )
    {
      pos += 4;
      return true;
    }
    if ( text.compare( pos, 5, "false" ) == 0 )
    {
      pos += 5;
      return true;
    }
    if ( text.compare( pos, 4, "null" ) == 0 )
    {
      pos += 4;
      return true;
    }
    return parse_number();
  }

  bool parse_string()
  {
    if ( !eat( '"' ) )
    {
      return false;
    }
    while ( pos < text.size() && text[pos] != '"' )
    {
      if ( text[pos] == '\\' )
      {
        ++pos;
        if ( pos >= text.size() )
        {
          return false;
        }
      }
      ++pos;
    }
    return eat( '"' );
  }

  bool parse_number()
  {
    const size_t start = pos;
    if ( pos < text.size() && ( text[pos] == '-' || text[pos] == '+' ) )
    {
      ++pos;
    }
    while ( pos < text.size() &&
            ( std::isdigit( static_cast<unsigned char>( text[pos] ) ) || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' || text[pos] == '+' ) )
    {
      ++pos;
    }
    return pos > start;
  }

  bool parse_object()
  {
    if ( !eat( '{' ) )
    {
      return false;
    }
    if ( eat( '}' ) )
    {
      return true;
    }
    do
    {
      if ( !parse_string() || !eat( ':' ) || !parse_value() )
      {
        return false;
      }
    } while ( eat( ',' ) );
    return eat( '}' );
  }

  bool parse_array()
  {
    if ( !eat( '[' ) )
    {
      return false;
    }
    if ( eat( ']' ) )
    {
      return true;
    }
    do
    {
      if ( !parse_value() )
      {
        return false;
      }
    } while ( eat( ',' ) );
    return eat( ']' );
  }

  bool parse_document()
  {
    if ( !parse_value() )
    {
      return false;
    }
    skip_ws();
    return pos == text.size();
  }
};

TEST_F( telemetry_fixture, spans_record_nesting_depth )
{
  {
    QDA_TRACE_SPAN_NAMED( outer, "outer" );
    outer.attr( "answer", int64_t{ 42 } );
    {
      QDA_TRACE_SPAN( "inner" );
      QDA_TRACE_SPAN( "innermost" ); /* same scope: nests under inner */
    }
    {
      QDA_TRACE_SPAN( "inner" );
    }
  }

  const auto events = telemetry::tracer::instance().collect();
  ASSERT_EQ( events.size(), 4u );

  uint32_t roots = 0u;
  for ( const auto& event : events )
  {
    if ( event.name == "outer" )
    {
      EXPECT_EQ( event.depth, 0u );
      ASSERT_EQ( event.attributes.size(), 1u );
      EXPECT_EQ( event.attributes[0].key, "answer" );
      EXPECT_EQ( event.attributes[0].i, 42 );
      ++roots;
    }
    else if ( event.name == "inner" )
    {
      EXPECT_EQ( event.depth, 1u );
    }
    else
    {
      EXPECT_EQ( event.name, "innermost" );
      EXPECT_EQ( event.depth, 2u );
    }
  }
  EXPECT_EQ( roots, 1u );

  /* children close before the parent and fall inside its window */
  const auto outer_it = std::find_if( events.begin(), events.end(),
                                      []( const auto& e ) { return e.name == "outer"; } );
  for ( const auto& event : events )
  {
    if ( event.name != "outer" )
    {
      EXPECT_GE( event.start_ns, outer_it->start_ns );
      EXPECT_LE( event.start_ns + event.duration_ns,
                 outer_it->start_ns + outer_it->duration_ns );
    }
  }
}

TEST_F( telemetry_fixture, collect_merges_events_from_worker_threads )
{
  constexpr uint32_t num_workers = 4u;
  std::vector<std::thread> workers;
  for ( uint32_t w = 0u; w < num_workers; ++w )
  {
    workers.emplace_back( [] { QDA_TRACE_SPAN( "worker.task" ); } );
  }
  {
    QDA_TRACE_SPAN( "main.task" );
  }
  for ( auto& worker : workers )
  {
    worker.join();
  }

  const auto events = telemetry::tracer::instance().collect();
  uint32_t worker_events = 0u;
  std::vector<uint32_t> worker_thread_ids;
  for ( const auto& event : events )
  {
    if ( event.name == "worker.task" )
    {
      ++worker_events;
      worker_thread_ids.push_back( event.thread );
    }
  }
  EXPECT_EQ( worker_events, num_workers );

  /* every worker recorded into its own ring */
  std::sort( worker_thread_ids.begin(), worker_thread_ids.end() );
  worker_thread_ids.erase( std::unique( worker_thread_ids.begin(), worker_thread_ids.end() ),
                           worker_thread_ids.end() );
  EXPECT_EQ( worker_thread_ids.size(), num_workers );
}

TEST_F( telemetry_fixture, counters_are_exact_under_contention )
{
  constexpr uint32_t num_workers = 8u;
  constexpr uint64_t per_worker = 20000u;
  std::vector<std::thread> workers;
  for ( uint32_t w = 0u; w < num_workers; ++w )
  {
    workers.emplace_back( [] {
      for ( uint64_t i = 0u; i < per_worker; ++i )
      {
        QDA_COUNT( "test.contended" );
      }
    } );
  }
  for ( auto& worker : workers )
  {
    worker.join();
  }

  const auto snapshot = telemetry::metrics_registry::instance().snapshot();
  const auto it = std::find_if( snapshot.counters.begin(), snapshot.counters.end(),
                                []( const auto& c ) { return c.first == "test.contended"; } );
  ASSERT_NE( it, snapshot.counters.end() );
  EXPECT_EQ( it->second, num_workers * per_worker );
}

TEST_F( telemetry_fixture, histogram_buckets_partition_values )
{
  for ( const double value : { 0.5, 1.0, 3.0, 9.0, 100.0 } )
  {
    QDA_HISTOGRAM( "test.hist", value, { 1.0, 4.0, 16.0 } );
  }
  const auto snapshot = telemetry::metrics_registry::instance().snapshot();
  ASSERT_EQ( snapshot.histograms.size(), 1u );
  const auto& hist = snapshot.histograms[0];
  EXPECT_EQ( hist.name, "test.hist" );
  ASSERT_EQ( hist.bucket_counts.size(), 4u ); /* three bounds + overflow */
  EXPECT_EQ( hist.bucket_counts[0], 2u );     /* 0.5, 1.0 (bounds inclusive) */
  EXPECT_EQ( hist.bucket_counts[1], 1u );     /* 3.0 */
  EXPECT_EQ( hist.bucket_counts[2], 1u );     /* 9.0 */
  EXPECT_EQ( hist.bucket_counts[3], 1u );     /* 100.0 overflow */
  EXPECT_EQ( hist.count, 5u );
  EXPECT_DOUBLE_EQ( hist.sum, 113.5 );
}

TEST_F( telemetry_fixture, chrome_trace_export_is_well_formed_json )
{
  {
    QDA_TRACE_SPAN_NAMED( root, "json.root" );
    root.attr( "text", std::string( "quote \" backslash \\ newline \n tab \t" ) )
        .attr( "ratio", 0.25 )
        .attr( "count", int64_t{ 7 } );
    QDA_TRACE_SPAN( "json.child" );
  }

  std::ostringstream out;
  telemetry::tracer::instance().export_chrome_trace( out );
  const std::string text = out.str();

  json_cursor cursor{ text };
  EXPECT_TRUE( cursor.parse_document() ) << text;

  /* spot-check the trace_event envelope */
  EXPECT_NE( text.find( "\"traceEvents\"" ), std::string::npos );
  EXPECT_NE( text.find( "\"ph\": \"X\"" ), std::string::npos );
  EXPECT_NE( text.find( "json.root" ), std::string::npos );
  EXPECT_NE( text.find( "json.child" ), std::string::npos );
  /* the raw control characters must have been escaped away */
  EXPECT_NE( text.find( "quote \\\" backslash \\\\ newline \\n tab \\t" ), std::string::npos );
}

TEST_F( telemetry_fixture, summary_nests_child_under_parent )
{
  {
    QDA_TRACE_SPAN( "alpha" );
    QDA_TRACE_SPAN( "beta" );
  }
  const std::string summary = telemetry::tracer::instance().summary();
  const auto alpha_pos = summary.find( "alpha" );
  const auto beta_pos = summary.find( "beta" );
  ASSERT_NE( alpha_pos, std::string::npos );
  ASSERT_NE( beta_pos, std::string::npos );
  EXPECT_LT( alpha_pos, beta_pos ); /* parent row first, child indented below */
}

TEST_F( telemetry_fixture, pass_manager_records_cost_deltas_for_hwb4 )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto result = manager.run( "revgen --hwb 4; tbs; revsimp; rptm; tpar" );

  ASSERT_EQ( result.reports.size(), 5u );
  const auto& rptm = result.reports[3];
  const auto& tpar = result.reports[4];
  EXPECT_EQ( rptm.name, "rptm" );
  EXPECT_EQ( tpar.name, "tpar" );

  /* the recorded exit deltas must equal the statistics of the circuit
   * the pipeline actually produced */
  const auto actual = compute_statistics( result.ir.require_quantum().circuit );
  ASSERT_TRUE( tpar.statistics_after.has_value() );
  EXPECT_EQ( tpar.statistics_after->t_count, actual.t_count );
  EXPECT_EQ( tpar.statistics_after->cnot_count, actual.cnot_count );
  EXPECT_EQ( tpar.statistics_after->depth, actual.depth );
  EXPECT_EQ( tpar.statistics_after->num_qubits, actual.num_qubits );

  /* report chaining: tpar's entry stats are rptm's exit stats */
  ASSERT_TRUE( rptm.statistics_after.has_value() );
  ASSERT_TRUE( tpar.statistics_before.has_value() );
  EXPECT_EQ( tpar.statistics_before->t_count, rptm.statistics_after->t_count );
  EXPECT_EQ( tpar.statistics_before->cnot_count, rptm.statistics_after->cnot_count );
  EXPECT_EQ( tpar.gates_before, rptm.gates_after );

  /* tpar reduces T-count on hwb 4 (the paper's Fig. 6 effect) */
  EXPECT_LT( tpar.statistics_after->t_count, tpar.statistics_before->t_count );

  const auto table = format_cost_table( result );
  EXPECT_NE( table.find( "T-count" ), std::string::npos );
  EXPECT_NE( table.find( "tpar" ), std::string::npos );
}

TEST_F( telemetry_fixture, pipeline_run_emits_spans_and_counters )
{
  pass_manager manager( /*enable_cache=*/true );
  manager.run( "revgen --hwb 4; tbs" );
  manager.run( "revgen --hwb 4; tbs" ); /* second run: cache hit */

  const auto events = telemetry::tracer::instance().collect();
  uint32_t pipeline_runs = 0u;
  uint32_t pass_spans = 0u;
  for ( const auto& event : events )
  {
    if ( event.name == "pipeline.run" )
    {
      ++pipeline_runs;
    }
    if ( event.name.rfind( "pass.", 0u ) == 0u )
    {
      ++pass_spans;
      EXPECT_GE( event.depth, 1u ); /* nested under pipeline.run */
    }
  }
  EXPECT_EQ( pipeline_runs, 2u );
  EXPECT_EQ( pass_spans, 2u ); /* the hit run replays no passes */

  const auto snapshot = telemetry::metrics_registry::instance().snapshot();
  const auto counter_value = [&]( const std::string& name ) -> uint64_t {
    const auto it = std::find_if( snapshot.counters.begin(), snapshot.counters.end(),
                                  [&]( const auto& c ) { return c.first == name; } );
    return it == snapshot.counters.end() ? 0u : it->second;
  };
  EXPECT_EQ( counter_value( "pipeline.cache.miss" ), 1u );
  EXPECT_EQ( counter_value( "pipeline.cache.hit" ), 1u );
  EXPECT_EQ( counter_value( "pipeline.passes_run" ), 2u );
}

TEST( telemetry_metadata, bench_metadata_is_populated_and_json_parses )
{
  const auto meta = telemetry::bench_metadata();
  EXPECT_FALSE( meta.git_sha.empty() );
  EXPECT_FALSE( meta.build_type.empty() );
  /* ISO-8601 UTC: 2026-08-07T00:00:00Z */
  ASSERT_EQ( meta.timestamp.size(), 20u );
  EXPECT_EQ( meta.timestamp[4], '-' );
  EXPECT_EQ( meta.timestamp[10], 'T' );
  EXPECT_EQ( meta.timestamp.back(), 'Z' );

  const std::string wrapped = "{ " + telemetry::bench_metadata_json() + " }";
  json_cursor cursor{ wrapped };
  EXPECT_TRUE( cursor.parse_document() ) << wrapped;
}

TEST( telemetry_disabled, hooks_cost_nothing_and_record_nothing )
{
  telemetry::set_enabled( false );
  telemetry::tracer::instance().clear();
  telemetry::metrics_registry::instance().reset();

  {
    QDA_TRACE_SPAN( "disabled.span" );
    QDA_COUNT( "disabled.counter" );
  }

  EXPECT_TRUE( telemetry::tracer::instance().collect().empty() );
  for ( const auto& [name, value] : telemetry::metrics_registry::instance().snapshot().counters )
  {
    if ( name == "disabled.counter" )
    {
      EXPECT_EQ( value, 0u );
    }
  }
}

} // namespace
