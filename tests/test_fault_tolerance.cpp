/*! \file test_fault_tolerance.cpp
 *  \brief Fault-tolerance layer: typed error taxonomy, deadlines,
 *         cooperative cancellation, degraded-mode compilation, retry
 *         with backoff, resource budgets, and the deterministic
 *         fault-injection harness.
 *
 *  The multi-worker fault-stress test here is a ThreadSanitizer target
 *  of the `sanitize (tsan)` CI job; the failpoint tests additionally
 *  run in the `fault-injection` CI leg (`-DQDA_ENABLE_FAILPOINTS=ON`).
 */
#include "fault/cancel.hpp"
#include "fault/error.hpp"
#include "fault/failpoint.hpp"
#include "pipeline/spec_parser.hpp"
#include "server/compile_server.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace qda;
using namespace qda::server;
using namespace std::chrono_literals;

constexpr const char* eq5 = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps";

/* a spec whose full compile takes multiple seconds (tpar dominates) */
constexpr const char* slow_spec = "revgen --hwb 12; tbs; revsimp; rptm; tpar; ps";

/* ---------------- error taxonomy ---------------- */

TEST( fault_taxonomy_test, codes_have_stable_names )
{
  EXPECT_STREQ( error_code_name( error_code::ok ), "ok" );
  EXPECT_STREQ( error_code_name( error_code::spec_parse ), "spec_parse" );
  EXPECT_STREQ( error_code_name( error_code::pass_failure ), "pass_failure" );
  EXPECT_STREQ( error_code_name( error_code::deadline_exceeded ), "deadline_exceeded" );
  EXPECT_STREQ( error_code_name( error_code::resource_exhausted ), "resource_exhausted" );
  EXPECT_STREQ( error_code_name( error_code::cancelled ), "cancelled" );
  EXPECT_STREQ( error_code_name( error_code::overloaded ), "overloaded" );
  EXPECT_STREQ( error_code_name( error_code::server_shutdown ), "server_shutdown" );
  EXPECT_STREQ( error_code_name( error_code::internal ), "internal" );
}

TEST( fault_taxonomy_test, typed_errors_remain_catchable_as_std_exceptions )
{
  /* the mixin hierarchy keeps every pre-taxonomy catch site working */
  try
  {
    throw qda_error( error_code::pass_failure, "boom", /*transient=*/true );
  }
  catch ( const std::runtime_error& e )
  {
    const auto* typed = dynamic_cast<const error*>( &e );
    ASSERT_NE( typed, nullptr );
    EXPECT_EQ( typed->code(), error_code::pass_failure );
    EXPECT_TRUE( typed->transient() );
  }
  EXPECT_THROW( throw spec_parse_error( "bad", 1u, 0u ), std::invalid_argument );
  EXPECT_THROW( throw spec_stage_error( "bad", 1u ), std::logic_error );
  EXPECT_THROW( throw server_overloaded( "full" ), std::runtime_error );
}

TEST( fault_taxonomy_test, classify_maps_standard_exceptions )
{
  const auto classify = []( auto&& thrown, error_code fallback ) {
    try
    {
      throw thrown;
    }
    catch ( ... )
    {
      return classify_current_exception( fallback );
    }
  };
  EXPECT_EQ( classify( qda_error( error_code::cancelled, "c" ), error_code::internal ),
             error_code::cancelled );
  EXPECT_EQ( classify( std::bad_alloc{}, error_code::internal ),
             error_code::resource_exhausted );
  EXPECT_EQ( classify( std::invalid_argument( "a" ), error_code::internal ),
             error_code::spec_parse );
  EXPECT_EQ( classify( std::runtime_error( "r" ), error_code::pass_failure ),
             error_code::pass_failure );
}

/* ---------------- cancellation primitives ---------------- */

TEST( cancel_test, detached_token_never_stops )
{
  cancel_token token;
  EXPECT_FALSE( token.stop_possible() );
  EXPECT_FALSE( token.stop_requested() );
  EXPECT_NO_THROW( token.check() );
}

TEST( cancel_test, cancel_and_deadline_throw_typed_errors )
{
  cancel_source source;
  auto token = source.token();
  EXPECT_TRUE( token.stop_possible() );
  EXPECT_NO_THROW( token.check() );

  source.set_deadline_after( -1ms ); /* already expired */
  try
  {
    token.check( "tpar" );
    FAIL() << "expired deadline did not throw";
  }
  catch ( const qda_error& e )
  {
    EXPECT_EQ( e.code(), error_code::deadline_exceeded );
    EXPECT_NE( std::string( e.what() ).find( "tpar" ), std::string::npos );
  }

  source.request_cancel(); /* explicit cancel outranks the deadline */
  try
  {
    token.check( "route" );
    FAIL() << "cancel did not throw";
  }
  catch ( const qda_error& e )
  {
    EXPECT_EQ( e.code(), error_code::cancelled );
  }
}

TEST( cancel_test, extend_deadline_keeps_the_later_of_the_two )
{
  cancel_source source;
  source.set_deadline_after( -1ms );
  EXPECT_TRUE( source.token().deadline_expired() );
  source.extend_deadline( fault_clock::now() + 1h );
  EXPECT_FALSE( source.token().deadline_expired() );
  /* extending backwards is a no-op */
  source.extend_deadline( fault_clock::now() - 1h );
  EXPECT_FALSE( source.token().deadline_expired() );
}

TEST( cancel_test, checkpoint_fires_every_stride_iterations )
{
  cancel_checkpoint checkpoint( 8u );
  uint32_t fired = 0u;
  for ( uint32_t i = 0u; i < 64u; ++i )
  {
    if ( checkpoint.due() )
    {
      ++fired;
    }
  }
  EXPECT_EQ( fired, 8u );
}

/* ---------------- spec diagnostics ---------------- */

TEST( spec_diagnostics_test, parse_error_carries_segment_and_offset )
{
  try
  {
    parse_pipeline( "revgen --hwb 4; bad!name --x 1" );
    FAIL() << "invalid pass name accepted";
  }
  catch ( const spec_parse_error& e )
  {
    EXPECT_EQ( e.segment(), 2u );
    EXPECT_EQ( e.offset(), 16u ); /* first char of "bad!name" */
    EXPECT_NE( std::string( e.what() ).find( "segment 2" ), std::string::npos );
  }
}

TEST( spec_diagnostics_test, unknown_pass_reports_its_segment )
{
  const auto spec = parse_pipeline( "revgen --hwb 4; nope" );
  try
  {
    validate_pipeline( spec );
    FAIL() << "unknown pass accepted";
  }
  catch ( const spec_parse_error& e )
  {
    EXPECT_EQ( e.segment(), 2u );
    EXPECT_EQ( e.offset(), 16u );
    EXPECT_NE( std::string( e.what() ).find( "nope" ), std::string::npos );
  }
}

TEST( spec_diagnostics_test, stage_violation_reports_its_segment )
{
  try
  {
    validate_pipeline( parse_pipeline( "revgen --hwb 3; tbs; tbs" ) );
    FAIL() << "illegal stage transition accepted";
  }
  catch ( const spec_stage_error& e )
  {
    EXPECT_EQ( e.code(), error_code::spec_parse );
    EXPECT_EQ( e.segment(), 3u );
  }
}

TEST( spec_diagnostics_test, server_shutdown_submit_is_typed )
{
  compile_server server( { .num_workers = 1u } );
  server.shutdown();
  try
  {
    server.submit( eq5 );
    FAIL() << "submit after shutdown accepted";
  }
  catch ( const qda_error& e )
  {
    EXPECT_EQ( e.code(), error_code::server_shutdown );
  }
}

/* ---------------- deadlines ---------------- */

TEST( deadline_test, short_deadline_fails_a_slow_compile_fast )
{
  server_options options;
  options.num_workers = 1u;
  compile_server server( options );

  const auto started = std::chrono::steady_clock::now();
  auto handle = server.submit( slow_spec, job_options{ .deadline = 50ms } );
  auto response = handle.get();
  const auto elapsed =
      std::chrono::duration<double, std::milli>( std::chrono::steady_clock::now() -
                                                 started )
          .count();

  EXPECT_EQ( response.code, error_code::deadline_exceeded );
  EXPECT_EQ( response.result, nullptr );
  EXPECT_FALSE( response.ok() );
  /* aborted long before the multi-second full compile (generous bound
   * to stay robust under Debug / sanitizer builds) */
  EXPECT_LT( elapsed, 2000.0 );

  /* the worker survived the deadline */
  auto next = server.submit( eq5 ).get();
  EXPECT_EQ( next.code, error_code::ok );
  ASSERT_NE( next.result, nullptr );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.deadline_exceeded, 1u );
  EXPECT_EQ( stats.failed, 0u );
  EXPECT_EQ( stats.compiled, 1u );
}

TEST( deadline_test, deadline_interrupts_tpar_mid_pass )
{
  /* self-calibrating: compile once to find this build's pass boundary
   * times, then arm a deadline that lands inside the tpar pass.  The
   * subcircuit library must stay out of both runs: a library splice
   * would skip the very tpar work the deadline is aimed at. */
  pass_manager manager( /*enable_cache=*/false );
  const auto spec = parse_pipeline( "revgen --hwb 10; tbs; revsimp; rptm; tpar; ps" );
  run_plan reference_plan;
  reference_plan.use_library = false;
  const auto reference = manager.run( spec, staged_ir{}, reference_plan );
  double before_tpar_ms = 0.0;
  double tpar_ms = 0.0;
  for ( const auto& report : reference.reports )
  {
    if ( report.name == "tpar" )
    {
      tpar_ms = report.elapsed_ms;
      break;
    }
    before_tpar_ms += report.elapsed_ms;
  }
  ASSERT_GT( tpar_ms, 0.0 );

  cancel_source source;
  run_plan plan;
  plan.cancel = source.token();
  plan.use_library = false;
  source.set_deadline_after( std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>( before_tpar_ms + tpar_ms / 2.0 ) ) );
  try
  {
    manager.run( spec, staged_ir{}, plan );
    FAIL() << "deadline inside tpar did not abort the run";
  }
  catch ( const qda_error& e )
  {
    EXPECT_EQ( e.code(), error_code::deadline_exceeded );
  }
}

/* ---------------- cancellation through the server ---------------- */

struct gate_control
{
  std::atomic<uint32_t> started{ 0u };
  std::atomic<bool> release{ false };

  void wait_for_start( uint32_t count ) const
  {
    while ( started.load() < count )
    {
      std::this_thread::yield();
    }
  }

  void open()
  {
    release.store( true );
  }
};

/*! Registry with a `spin` pass that blocks until released, polling its
 *  cancel token (the cooperative-cancellation shape of tpar/route), and
 *  a degradable `flaky` pass that always throws. */
pass_registry make_fault_registry( gate_control& gate, std::atomic<int>* flaky_budget = nullptr )
{
  pass_registry registry;
  register_builtin_passes( registry );

  pass_info spin;
  spin.name = "spin";
  spin.summary = "test pass that blocks until released, polling cancellation";
  spin.accepts = { stage::permutation };
  spin.produces = stage::permutation;
  spin.known_options = { "id" };
  spin.run = [&gate]( staged_ir&, const pass_arguments&, const pass_context& context ) {
    gate.started.fetch_add( 1u );
    while ( !gate.release.load() )
    {
      context.cancel.check( "spin" );
      std::this_thread::sleep_for( 50us );
    }
  };
  registry.register_pass( std::move( spin ) );

  pass_info flaky;
  flaky.name = "flaky";
  flaky.summary = "test pass that fails while its budget lasts";
  flaky.accepts = { stage::reversible };
  flaky.produces = stage::reversible;
  flaky.run = [flaky_budget]( staged_ir&, const pass_arguments&, const pass_context& ) {
    if ( !flaky_budget || flaky_budget->fetch_sub( 1 ) > 0 )
    {
      throw qda_error( error_code::pass_failure, "synthetic transient fault",
                       /*transient=*/true );
    }
  };
  flaky.degradable = true;
  registry.register_pass( std::move( flaky ) );
  return registry;
}

TEST( cancel_jobs_test, cancel_while_queued_never_compiles )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto running = server.submit( "revgen --hwb 3; spin --id 1", job_options{} );
  gate.wait_for_start( 1u ); /* worker busy */
  auto queued = server.submit( "revgen --hwb 3; spin --id 2", job_options{} );
  queued.cancel(); /* cancelled before any worker picks it up */
  gate.open();

  auto first = running.get();
  auto second = queued.get();
  EXPECT_EQ( first.code, error_code::ok );
  EXPECT_EQ( second.code, error_code::cancelled );
  EXPECT_EQ( second.result, nullptr );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.cancelled, 1u );
  EXPECT_EQ( stats.compiled, 1u );
}

TEST( cancel_jobs_test, cancel_mid_compile_unwinds_the_pass )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto handle = server.submit( "revgen --hwb 3; spin --id 1", job_options{} );
  gate.wait_for_start( 1u ); /* the worker is inside the spin pass */
  handle.cancel();

  auto response = handle.get(); /* returns without ever opening the gate */
  EXPECT_EQ( response.code, error_code::cancelled );
  EXPECT_EQ( response.result, nullptr );
  EXPECT_NE( response.error_message.find( "spin" ), std::string::npos );

  /* the worker survived the unwound pass */
  auto next = server.submit( eq5 ).get();
  EXPECT_EQ( next.code, error_code::ok );
  EXPECT_EQ( server.statistics().cancelled, 1u );
}

TEST( cancel_jobs_test, coalesced_job_aborts_only_when_every_waiter_cancels )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto first = server.submit( "revgen --hwb 3; spin --id 7", job_options{} );
  gate.wait_for_start( 1u );
  auto second = server.submit( "revgen --hwb 3; spin --id 7", job_options{} );

  first.cancel(); /* one of two waiters: the job must keep running */
  std::this_thread::sleep_for( 5ms );
  gate.open();

  auto r1 = first.get();
  auto r2 = second.get();
  /* the cancelled waiter still receives the shared outcome */
  EXPECT_EQ( r1.code, error_code::ok );
  EXPECT_EQ( r2.code, error_code::ok );
  EXPECT_TRUE( r2.coalesced );
  EXPECT_EQ( server.statistics().cancelled, 0u );
}

TEST( cancel_jobs_test, coalesced_job_aborts_once_all_waiters_cancel )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto first = server.submit( "revgen --hwb 3; spin --id 8", job_options{} );
  gate.wait_for_start( 1u );
  auto second = server.submit( "revgen --hwb 3; spin --id 8", job_options{} );

  first.cancel();
  second.cancel();

  auto r1 = first.get();
  auto r2 = second.get();
  EXPECT_EQ( r1.code, error_code::cancelled );
  EXPECT_EQ( r2.code, error_code::cancelled );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.cancelled, 1u ); /* one shared job */
  EXPECT_EQ( stats.coalesced, 1u );
  EXPECT_EQ( stats.compiled, 0u );
}

/* ---------------- degraded-mode compilation ---------------- */

TEST( degrade_test, degraded_run_rolls_back_and_stays_equivalent )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  const std::string spec = "revgen --hwb 4; tbs; flaky; revsimp; rptm; tpar; ps";

  /* strict: the failing pass fails the job, typed */
  auto strict = server.submit( spec, job_options{} ).get();
  EXPECT_EQ( strict.code, error_code::pass_failure );
  EXPECT_EQ( strict.result, nullptr );

  /* degrade: the failing pass is rolled back and marked, the job
   * completes with the exact circuit of the pipeline without it */
  auto degraded =
      server.submit( spec, job_options{ .policy = failure_policy::degrade } ).get();
  EXPECT_EQ( degraded.code, error_code::ok );
  EXPECT_TRUE( degraded.degraded );
  ASSERT_NE( degraded.result, nullptr );
  EXPECT_TRUE( degraded.result->degraded );
  EXPECT_EQ( degraded.result->degraded_passes, 1u );
  ASSERT_EQ( degraded.result->reports.size(), 7u );
  const auto& report = degraded.result->reports[2];
  EXPECT_EQ( report.name, "flaky" );
  EXPECT_TRUE( report.degraded );
  EXPECT_EQ( report.degraded_reason, "pass_failure" );

  pass_manager reference_manager( /*enable_cache=*/false );
  const auto reference = reference_manager.run( eq5 );
  EXPECT_TRUE( degraded.result->ir.require_quantum().circuit ==
               reference.ir.require_quantum().circuit );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.degraded, 1u );
  EXPECT_EQ( stats.failed, 1u );
}

TEST( degrade_test, degraded_results_never_poison_the_caches )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  const std::string spec = "revgen --hwb 4; tbs; flaky; revsimp; rptm; tpar; ps";
  const job_options degrade{ .policy = failure_policy::degrade };

  auto first = server.submit( spec, degrade ).get();
  ASSERT_EQ( first.code, error_code::ok );
  EXPECT_TRUE( first.degraded );

  /* a later strict client with the same structural key must not be
   * served the degraded result -- it recompiles and fails honestly */
  auto strict = server.submit( spec, job_options{} ).get();
  EXPECT_EQ( strict.code, error_code::pass_failure );

  /* and a later degrade client recompiles too (nothing was cached) */
  auto second = server.submit( spec, degrade ).get();
  EXPECT_EQ( second.code, error_code::ok );
  EXPECT_TRUE( second.degraded );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.cache_hits, 0u );
  EXPECT_EQ( stats.compiled, 2u );
  EXPECT_EQ( stats.failed, 1u );
}

TEST( degrade_test, expired_deadline_skips_degradable_passes_only )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto spec = parse_pipeline( eq5 );

  cancel_source source;
  source.set_deadline_after( -1ms ); /* expired before the run starts */
  run_plan plan;
  plan.cancel = source.token();
  plan.policy = failure_policy::degrade;

  const auto result = manager.run( spec, staged_ir{}, plan );
  EXPECT_TRUE( result.degraded );
  /* revsimp, tpar are degradable (peephole is not in eq5); mandatory
   * synthesis/mapping passes still ran and produced a valid circuit */
  EXPECT_EQ( result.degraded_passes, 2u );
  EXPECT_NO_THROW( result.ir.require_quantum() );
  for ( const auto& report : result.reports )
  {
    if ( report.degraded )
    {
      EXPECT_EQ( report.degraded_reason, "deadline_exceeded" );
    }
  }

  /* the same expired deadline under strict policy aborts instead */
  run_plan strict_plan;
  strict_plan.cancel = source.token();
  try
  {
    manager.run( spec, staged_ir{}, strict_plan );
    FAIL() << "expired deadline accepted under strict policy";
  }
  catch ( const qda_error& e )
  {
    EXPECT_EQ( e.code(), error_code::deadline_exceeded );
  }
}

/* ---------------- resource budgets ---------------- */

TEST( resource_test, gate_budget_exhaustion_is_typed )
{
  compile_server server( { .num_workers = 1u } );
  auto response =
      server.submit( eq5, job_options{ .limits = { .max_gates = 1u } } ).get();
  EXPECT_EQ( response.code, error_code::resource_exhausted );
  EXPECT_EQ( response.result, nullptr );
  EXPECT_NE( response.error_message.find( "budget" ), std::string::npos );
  EXPECT_EQ( server.statistics().failed, 1u );
}

/* ---------------- retry with backoff ---------------- */

TEST( retry_test, transient_failures_retry_until_success )
{
  gate_control gate;
  std::atomic<int> flaky_budget{ 1 }; /* fail once, then succeed */
  const auto registry = make_fault_registry( gate, &flaky_budget );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto response = server.submit( "revgen --hwb 3; tbs; flaky",
                                 job_options{ .max_retries = 2u } )
                      .get();
  EXPECT_EQ( response.code, error_code::ok );
  EXPECT_EQ( response.retries, 1u );
  ASSERT_NE( response.result, nullptr );
  EXPECT_EQ( server.statistics().retried, 1u );
}

TEST( retry_test, transient_failures_without_budget_fail_typed )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate ); /* flaky always fails */
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto response =
      server.submit( "revgen --hwb 3; tbs; flaky", job_options{ .max_retries = 2u } )
          .get();
  EXPECT_EQ( response.code, error_code::pass_failure );
  EXPECT_EQ( response.retries, 2u ); /* budget consumed, still failing */
  EXPECT_EQ( server.statistics().retried, 2u );

  auto no_budget = server.submit( "revgen --hwb 3; tbs; flaky", job_options{} ).get();
  EXPECT_EQ( no_budget.code, error_code::pass_failure );
  EXPECT_EQ( no_budget.retries, 0u );
}

TEST( retry_test, admission_retries_ride_out_a_transient_queue_full )
{
  gate_control gate;
  const auto registry = make_fault_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.max_queue_depth = 1u;
  options.reject_when_full = true;
  options.registry = &registry;
  compile_server server( options );

  auto running = server.submit( "revgen --hwb 3; spin --id 1", job_options{} );
  gate.wait_for_start( 1u );
  auto queued = server.submit( "revgen --hwb 3; spin --id 2", job_options{} );

  /* without a retry budget the third submission bounces immediately */
  EXPECT_THROW( server.submit( "revgen --hwb 3; spin --id 3", job_options{} ),
                server_overloaded );

  /* with one, a release during the backoff lets it through */
  std::thread opener( [&gate] {
    std::this_thread::sleep_for( 10ms );
    gate.open();
  } );
  job_handle third;
  EXPECT_NO_THROW( third = server.submit( "revgen --hwb 3; spin --id 3",
                                          job_options{ .max_retries = 10u } ) );
  opener.join();
  EXPECT_EQ( third.get().code, error_code::ok );
  EXPECT_EQ( queued.get().code, error_code::ok );
  EXPECT_EQ( running.get().code, error_code::ok );
  EXPECT_EQ( server.statistics().rejected, 1u );
}

#if QDA_FAILPOINTS_ENABLED

/* ---------------- deterministic fault injection ---------------- */

/*! Disarms every failpoint on scope exit (the registry is global). */
struct failpoint_guard
{
  ~failpoint_guard()
  {
    failpoint::registry::instance().reset();
  }
};

TEST( failpoint_test, parse_spec_accepts_well_formed_entries )
{
  const auto configs =
      failpoint::parse_spec( "pass.tpar:fail:0.25:42,server.worker:sleep:1:7" );
  ASSERT_EQ( configs.size(), 2u );
  EXPECT_EQ( configs[0].site, "pass.tpar" );
  EXPECT_EQ( configs[0].action, failpoint::kind::fail );
  EXPECT_DOUBLE_EQ( configs[0].probability, 0.25 );
  EXPECT_EQ( configs[0].seed, 42u );
  EXPECT_EQ( configs[1].site, "server.worker" );
  EXPECT_EQ( configs[1].action, failpoint::kind::sleep );
}

TEST( failpoint_test, parse_spec_rejects_malformed_entries )
{
  EXPECT_THROW( failpoint::parse_spec( "site:fail:0.5" ), std::invalid_argument );
  EXPECT_THROW( failpoint::parse_spec( "site:explode:0.5:1" ), std::invalid_argument );
  EXPECT_THROW( failpoint::parse_spec( "site:fail:zzz:1" ), std::invalid_argument );
  EXPECT_THROW( failpoint::parse_spec( "site:fail:1.5:1" ), std::invalid_argument );
  EXPECT_THROW( failpoint::parse_spec( ":fail:0.5:1" ), std::invalid_argument );
}

TEST( failpoint_test, trigger_sequence_is_deterministic_per_seed )
{
  failpoint_guard guard;
  auto& registry = failpoint::registry::instance();

  const auto run_once = [&registry] {
    registry.arm( failpoint::parse_spec( "unit.det:fail:0.5:12345" ) );
    std::vector<bool> pattern;
    for ( uint32_t i = 0u; i < 200u; ++i )
    {
      bool fired = false;
      try
      {
        registry.hit( "unit.det" );
      }
      catch ( const qda_error& e )
      {
        EXPECT_EQ( e.code(), error_code::pass_failure );
        EXPECT_TRUE( e.transient() );
        fired = true;
      }
      pattern.push_back( fired );
    }
    return std::make_pair( pattern, registry.trigger_count( "unit.det" ) );
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ( first.first, second.first );
  EXPECT_EQ( first.second, second.second );
  EXPECT_GT( first.second, 50u ); /* ~100 of 200 at p=0.5 */
  EXPECT_LT( first.second, 150u );
}

TEST( failpoint_test, unarmed_sites_are_free_and_silent )
{
  failpoint_guard guard;
  auto& registry = failpoint::registry::instance();
  registry.reset();
  EXPECT_FALSE( registry.any_armed() );
  EXPECT_NO_THROW( registry.hit( "pass.tpar" ) );
  EXPECT_EQ( registry.trigger_count( "pass.tpar" ), 0u );

  registry.arm( failpoint::parse_spec( "other.site:fail:1:1" ) );
  EXPECT_NO_THROW( registry.hit( "pass.tpar" ) ); /* different site */
}

TEST( failpoint_test, env_arming_is_forgiving )
{
  failpoint_guard guard;
  auto& registry = failpoint::registry::instance();

  ::setenv( "QDA_FAILPOINTS", "unit.env:fail:1:7", 1 );
  registry.arm_from_env();
  EXPECT_TRUE( registry.any_armed() );
  EXPECT_THROW( registry.hit( "unit.env" ), qda_error );

  registry.reset();
  ::setenv( "QDA_FAILPOINTS", "not a failpoint spec", 1 );
  EXPECT_NO_THROW( registry.arm_from_env() ); /* a typo must not crash */
  EXPECT_FALSE( registry.any_armed() );
  ::unsetenv( "QDA_FAILPOINTS" );
}

TEST( failpoint_test, injected_tpar_failure_degrades_with_preserved_semantics )
{
  failpoint_guard guard;
  failpoint::registry::instance().arm( failpoint::parse_spec( "pass.tpar:fail:1:1" ) );

  compile_server server( { .num_workers = 1u } );
  auto response =
      server.submit( eq5, job_options{ .policy = failure_policy::degrade } ).get();
  ASSERT_EQ( response.code, error_code::ok );
  EXPECT_TRUE( response.degraded );
  ASSERT_NE( response.result, nullptr );
  EXPECT_GE( failpoint::registry::instance().trigger_count( "pass.tpar" ), 1u );

  bool tpar_degraded = false;
  for ( const auto& report : response.result->reports )
  {
    if ( report.name == "tpar" )
    {
      tpar_degraded = report.degraded;
      EXPECT_EQ( report.degraded_reason, "pass_failure" );
    }
  }
  EXPECT_TRUE( tpar_degraded );

  /* the degraded circuit computes the same unitary as a clean compile */
  failpoint::registry::instance().reset();
  pass_manager reference_manager( /*enable_cache=*/false );
  const auto reference = reference_manager.run( eq5 );
  EXPECT_TRUE( circuits_equivalent( response.result->ir.require_quantum().circuit,
                                    reference.ir.require_quantum().circuit ) );
}

TEST( failpoint_test, strict_injected_failure_is_typed_and_not_cached )
{
  failpoint_guard guard;
  failpoint::registry::instance().arm( failpoint::parse_spec( "pass.tpar:fail:1:1" ) );

  compile_server server( { .num_workers = 1u } );
  auto failed = server.submit( eq5 ).get();
  EXPECT_EQ( failed.code, error_code::pass_failure );
  EXPECT_EQ( failed.result, nullptr );

  /* no negative caching: disarm and the same spec compiles cleanly on
   * the same server (and the same worker) */
  failpoint::registry::instance().reset();
  auto healthy = server.submit( eq5 ).get();
  EXPECT_EQ( healthy.code, error_code::ok );
  EXPECT_FALSE( healthy.cache_hit );
  ASSERT_NE( healthy.result, nullptr );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.failed, 1u );
  EXPECT_EQ( stats.compiled, 1u );
  EXPECT_EQ( stats.cache_hits, 0u );
}

TEST( failpoint_test, worker_fault_retries_until_success )
{
  /* find a seed whose site-local coin triggers on the first evaluation
   * and passes on the second (replicating registry::hit's rolls) */
  uint64_t seed = 0u;
  for ( uint64_t candidate = 1u; candidate < 4096u; ++candidate )
  {
    std::mt19937_64 rng( candidate );
    const auto roll = [&rng] {
      std::uniform_real_distribution<double> coin( 0.0, 1.0 );
      return coin( rng );
    };
    if ( roll() < 0.5 && roll() >= 0.5 )
    {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE( seed, 0u );

  failpoint_guard guard;
  failpoint::registry::instance().arm( failpoint::parse_spec(
      "server.worker:fail:0.5:" + std::to_string( seed ) ) );

  compile_server server( { .num_workers = 1u } );
  auto response = server.submit( eq5, job_options{ .max_retries = 1u } ).get();
  EXPECT_EQ( response.code, error_code::ok );
  EXPECT_EQ( response.retries, 1u );
  ASSERT_NE( response.result, nullptr );
  EXPECT_EQ( failpoint::registry::instance().trigger_count( "server.worker" ), 1u );
}

TEST( failpoint_test, cache_store_faults_are_contained )
{
  failpoint_guard guard;
  failpoint::registry::instance().arm( failpoint::parse_spec( "cache.store:fail:1:1" ) );

  compile_server server( { .num_workers = 1u } );
  auto first = server.submit( eq5 ).get();
  EXPECT_EQ( first.code, error_code::ok ); /* store failure is swallowed */
  ASSERT_NE( first.result, nullptr );

  /* nothing was stored, so the same spec compiles again as a miss */
  auto second = server.submit( eq5 ).get();
  EXPECT_EQ( second.code, error_code::ok );
  EXPECT_FALSE( second.cache_hit );
  EXPECT_EQ( server.statistics().compiled, 2u );
}

/* ---------------- multi-worker fault stress (TSan target) ---------------- */

TEST( fault_stress_test, eight_workers_survive_random_injected_faults )
{
  failpoint_guard guard;
  failpoint::registry::instance().arm( failpoint::parse_spec(
      "pass.tpar:fail:0.3:11,server.worker:fail:0.15:22,"
      "prefix.snapshot:fail:0.5:33,cache.store:fail:0.25:44" ) );

  server_options options;
  options.num_workers = 8u;
  compile_server server( options );

  const std::vector<std::string> specs = {
    "revgen --hwb 3; tbs; revsimp; rptm; tpar; ps",
    "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps",
    "revgen --hwb 4; tbs; rptm; tpar",
    "revgen --hwb 5; tbs; revsimp; rptm; tpar; ps",
  };
  const std::vector<job_options> mixes = {
    job_options{},
    job_options{ .policy = failure_policy::degrade },
    job_options{ .max_retries = 2u },
    job_options{ .policy = failure_policy::degrade, .max_retries = 1u },
  };

  std::vector<job_handle> handles;
  for ( uint32_t i = 0u; i < 64u; ++i )
  {
    handles.push_back(
        server.submit( specs[i % specs.size()], mixes[i % mixes.size()] ) );
  }

  uint64_t succeeded = 0u;
  for ( auto& handle : handles )
  {
    auto response = handle.get(); /* every future resolves: no dead workers */
    EXPECT_TRUE( response.code == error_code::ok ||
                 response.code == error_code::pass_failure )
        << error_code_name( response.code ) << ": " << response.error_message;
    if ( response.code == error_code::ok )
    {
      ASSERT_NE( response.result, nullptr );
      ++succeeded;
    }
    else
    {
      EXPECT_EQ( response.result, nullptr );
    }
  }
  EXPECT_GT( succeeded, 0u );

  /* disarm: the pool is fully healthy afterwards */
  failpoint::registry::instance().reset();
  auto healthy = server.submit( eq5 ).get();
  EXPECT_EQ( healthy.code, error_code::ok );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.submitted, 65u );
  EXPECT_EQ( stats.compiled + stats.failed + stats.cache_hits + stats.coalesced,
             stats.submitted - stats.rejected );
}

#else // !QDA_FAILPOINTS_ENABLED

TEST( failpoint_test, compiled_out_in_this_build )
{
  GTEST_SKIP() << "failpoints compiled out; configure with -DQDA_ENABLE_FAILPOINTS=ON";
}

#endif // QDA_FAILPOINTS_ENABLED

} // namespace
