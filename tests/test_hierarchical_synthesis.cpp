#include "kernel/bits.hpp"
#include "synthesis/bdd_based.hpp"
#include "synthesis/lut_based.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

/*! Checks that `result` computes `f` on its output line when all
 *  non-input lines start at 0, and that inputs pass through unchanged.
 */
void expect_computes( const hierarchical_synthesis_result& result, const truth_table& f,
                      const std::string& context, bool expect_clean_ancillae )
{
  ASSERT_EQ( result.output_lines.size(), 1u ) << context;
  const uint32_t n = f.num_vars();
  const uint32_t out_line = result.output_lines[0];
  for ( uint64_t x = 0u; x < f.num_bits(); ++x )
  {
    const uint64_t image = result.circuit.simulate( x );
    ASSERT_EQ( image & ( ( uint64_t{ 1 } << n ) - 1u ), x ) << context << " input clobbered";
    ASSERT_EQ( test_bit( image, out_line ), f.get_bit( x ) ) << context << " x=" << x;
    if ( expect_clean_ancillae )
    {
      /* all lines except inputs and the output must return to 0 */
      for ( uint32_t line = n; line < result.circuit.num_lines(); ++line )
      {
        if ( line == out_line )
        {
          continue;
        }
        ASSERT_FALSE( test_bit( image, line ) )
            << context << " dirty ancilla line " << line << " at x=" << x;
      }
    }
  }
}

TEST( bdd_synthesis_test, simple_functions_with_garbage )
{
  for ( const auto& f : { majority_function( 3u ), inner_product_function( 2u ),
                          hidden_weighted_bit_function( 4u ) } )
  {
    const auto result = bdd_based_synthesis( f, /*uncompute_garbage=*/false );
    expect_computes( result, f, "bdd garbage", /*expect_clean_ancillae=*/false );
    EXPECT_GT( result.num_garbage, 0u );
  }
}

TEST( bdd_synthesis_test, uncompute_restores_ancillae )
{
  for ( const auto& f : { majority_function( 3u ), inner_product_function( 2u ),
                          random_truth_table( 5u, 500u ) } )
  {
    const auto result = bdd_based_synthesis( f, /*uncompute_garbage=*/true );
    expect_computes( result, f, "bdd clean", /*expect_clean_ancillae=*/true );
    EXPECT_EQ( result.num_garbage, 0u );
  }
}

TEST( bdd_synthesis_test, random_functions )
{
  for ( uint64_t seed = 0u; seed < 12u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 600u );
    const auto result = bdd_based_synthesis( f );
    expect_computes( result, f, "bdd random", false );
  }
}

TEST( bdd_synthesis_test, ancilla_count_equals_bdd_size )
{
  const auto f = majority_function( 3u );
  bdd_manager mgr( 3u );
  const auto root = mgr.from_truth_table( f );
  const auto result = bdd_based_synthesis( mgr, { root } );
  EXPECT_EQ( result.num_ancillae, mgr.count_nodes( root ) );
}

TEST( bdd_synthesis_test, shared_nodes_across_outputs )
{
  bdd_manager mgr( 4u );
  const auto a = mgr.variable( 0u );
  const auto b = mgr.variable( 1u );
  const auto c = mgr.variable( 2u );
  const auto shared = mgr.land( a, b );
  const auto f = mgr.lxor( shared, c );
  const auto g = mgr.lor( shared, c );
  const auto result = bdd_based_synthesis( mgr, { f, g } );
  ASSERT_EQ( result.output_lines.size(), 2u );
  const auto tf = mgr.to_truth_table( f );
  const auto tg = mgr.to_truth_table( g );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const auto image = result.circuit.simulate( x );
    EXPECT_EQ( test_bit( image, result.output_lines[0] ), tf.get_bit( x ) );
    EXPECT_EQ( test_bit( image, result.output_lines[1] ), tg.get_bit( x ) );
  }
}

TEST( lhrs_test, bennett_strategy_cleans_intermediates )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 700u );
    const auto result = lut_based_synthesis( f, 4u, pebbling_strategy::bennett );
    expect_computes( result, f, "lhrs bennett", /*expect_clean_ancillae=*/true );
  }
}

TEST( lhrs_test, eager_strategy_cleans_intermediates )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 800u );
    const auto result = lut_based_synthesis( f, 4u, pebbling_strategy::eager );
    expect_computes( result, f, "lhrs eager", /*expect_clean_ancillae=*/true );
  }
}

TEST( lhrs_test, eager_uses_no_more_lines_than_bennett )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 900u );
    const auto bennett = lut_based_synthesis( f, 3u, pebbling_strategy::bennett );
    const auto eager = lut_based_synthesis( f, 3u, pebbling_strategy::eager );
    EXPECT_LE( eager.circuit.num_lines(), bennett.circuit.num_lines() ) << "seed=" << seed;
    expect_computes( eager, f, "lhrs eager lines", true );
  }
}

TEST( lhrs_test, cut_size_tradeoff_on_structured_function )
{
  /* the inner product function has a compact XAG, so even small cuts fit */
  const auto f = inner_product_function( 4u );
  const auto small_cuts = lut_based_synthesis( f, 2u, pebbling_strategy::eager );
  const auto large_cuts = lut_based_synthesis( f, 6u, pebbling_strategy::eager );
  expect_computes( small_cuts, f, "lhrs k=2", true );
  expect_computes( large_cuts, f, "lhrs k=6", true );
  EXPECT_LE( large_cuts.num_ancillae, small_cuts.num_ancillae + 1u );
}

TEST( lhrs_test, works_on_lut_network_directly )
{
  /* two-level network: (x0 & x1) ^ x2, PO also consumed internally */
  lut_network net( 3u );
  const auto conj = net.add_lut( { 0u, 1u },
                                 truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) );
  const auto sum = net.add_lut( { conj, 2u },
                                truth_table::projection( 2u, 0u ) ^ truth_table::projection( 2u, 1u ) );
  net.add_po( sum );
  const auto result = lut_based_synthesis( net, pebbling_strategy::eager );
  const auto expected = ( truth_table::projection( 3u, 0u ) & truth_table::projection( 3u, 1u ) ) ^
                        truth_table::projection( 3u, 2u );
  expect_computes( result, expected, "lhrs direct", true );
}

TEST( lhrs_test, po_that_feeds_other_luts_is_not_uncomputed )
{
  lut_network net( 2u );
  const auto conj = net.add_lut( { 0u, 1u },
                                 truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) );
  const auto inv = net.add_lut( { conj }, ~truth_table::projection( 1u, 0u ) );
  net.add_po( conj );
  net.add_po( inv );
  const auto result = lut_based_synthesis( net, pebbling_strategy::eager );
  ASSERT_EQ( result.output_lines.size(), 2u );
  const auto f_and = truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u );
  for ( uint64_t x = 0u; x < 4u; ++x )
  {
    const auto image = result.circuit.simulate( x );
    EXPECT_EQ( test_bit( image, result.output_lines[0] ), f_and.get_bit( x ) );
    EXPECT_EQ( test_bit( image, result.output_lines[1] ), !f_and.get_bit( x ) );
  }
}

class lhrs_property_test
    : public ::testing::TestWithParam<std::tuple<uint32_t, pebbling_strategy>>
{
};

TEST_P( lhrs_property_test, exact_over_seeds )
{
  const auto [cut_size, strategy] = GetParam();
  for ( uint64_t seed = 0u; seed < 4u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed * 31u + 17u );
    const auto result = lut_based_synthesis( f, cut_size, strategy );
    expect_computes( result, f, "lhrs sweep", true );
  }
}

INSTANTIATE_TEST_SUITE_P(
    sweep, lhrs_property_test,
    ::testing::Combine( ::testing::Values( 2u, 3u, 4u, 5u ),
                        ::testing::Values( pebbling_strategy::bennett, pebbling_strategy::eager ) ) );

} // namespace
} // namespace qda
