#include "kernel/spectral.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/embedding.hpp"
#include "synthesis/esop_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/single_target.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

void expect_realizes( const rev_circuit& circuit, const permutation& target,
                      const std::string& context )
{
  ASSERT_EQ( circuit.num_lines(), target.num_vars() ) << context;
  for ( uint64_t x = 0u; x < target.size(); ++x )
  {
    ASSERT_EQ( circuit.simulate( x ), target[x] ) << context << " at x=" << x;
  }
}

TEST( tbs_test, identity_needs_no_gates )
{
  EXPECT_EQ( transformation_based_synthesis( permutation( 4u ) ).num_gates(), 0u );
  EXPECT_EQ( transformation_based_synthesis_bidirectional( permutation( 4u ) ).num_gates(), 0u );
}

TEST( tbs_test, single_not )
{
  const auto pi = permutation::xor_constant( 3u, 0b001u );
  const auto circuit = transformation_based_synthesis( pi );
  expect_realizes( circuit, pi, "not" );
  EXPECT_EQ( circuit.num_gates(), 1u );
}

TEST( tbs_test, cnot_pattern )
{
  /* (x0, x1) -> (x0, x0 xor x1) */
  const auto pi = permutation::from_vector( { 0u, 3u, 2u, 1u } );
  const auto circuit = transformation_based_synthesis( pi );
  expect_realizes( circuit, pi, "cnot" );
}

TEST( tbs_test, paper_fig7_permutation )
{
  const auto pi = paper_fig7_permutation();
  const auto circuit = transformation_based_synthesis( pi );
  expect_realizes( circuit, pi, "fig7 pi" );
  const auto inverse_circuit = transformation_based_synthesis( pi.inverse() );
  expect_realizes( inverse_circuit, pi.inverse(), "fig7 pi inverse" );
}

TEST( tbs_test, exhaustive_on_all_3_variable_single_cycles )
{
  /* all transpositions of B^3 */
  for ( uint64_t a = 0u; a < 8u; ++a )
  {
    for ( uint64_t b = a + 1u; b < 8u; ++b )
    {
      permutation pi( 3u );
      pi.set_image( a, b );
      pi.set_image( b, a );
      const auto circuit = transformation_based_synthesis( pi );
      expect_realizes( circuit, pi, "transposition" );
    }
  }
}

TEST( tbs_test, random_permutations_up_to_6_vars )
{
  for ( uint32_t num_vars = 1u; num_vars <= 6u; ++num_vars )
  {
    for ( uint64_t seed = 0u; seed < 10u; ++seed )
    {
      const auto pi = permutation::random( num_vars, seed * 13u + num_vars );
      expect_realizes( transformation_based_synthesis( pi ), pi, "random uni" );
    }
  }
}

TEST( tbs_test, bidirectional_random_permutations )
{
  for ( uint32_t num_vars = 1u; num_vars <= 6u; ++num_vars )
  {
    for ( uint64_t seed = 0u; seed < 10u; ++seed )
    {
      const auto pi = permutation::random( num_vars, seed * 17u + num_vars );
      expect_realizes( transformation_based_synthesis_bidirectional( pi ), pi, "random bidi" );
    }
  }
}

TEST( tbs_test, bidirectional_not_worse_on_benchmarks )
{
  for ( const auto& pi : { hwb_permutation( 4u ), hwb_permutation( 5u ),
                           gray_code_permutation( 5u ), modular_adder_permutation( 5u, 3u ) } )
  {
    const auto uni = transformation_based_synthesis( pi );
    const auto bidi = transformation_based_synthesis_bidirectional( pi );
    expect_realizes( bidi, pi, "benchmark bidi" );
    EXPECT_LE( bidi.num_gates(), uni.num_gates() );
  }
}

TEST( dbs_test, identity_and_simple_gates )
{
  EXPECT_EQ( decomposition_based_synthesis( permutation( 3u ) ).num_gates(), 0u );
  const auto pi = permutation::xor_constant( 3u, 0b010u );
  expect_realizes( decomposition_based_synthesis( pi ), pi, "dbs not" );
}

TEST( dbs_test, paper_fig7_permutation )
{
  const auto pi = paper_fig7_permutation();
  expect_realizes( decomposition_based_synthesis( pi ), pi, "dbs fig7" );
  expect_realizes( decomposition_based_synthesis( pi.inverse() ), pi.inverse(), "dbs fig7 inv" );
}

TEST( dbs_test, exhaustive_all_2_variable_permutations )
{
  /* all 24 permutations of B^2 */
  std::vector<uint64_t> images{ 0u, 1u, 2u, 3u };
  std::sort( images.begin(), images.end() );
  do
  {
    const auto pi = permutation::from_vector( images );
    expect_realizes( decomposition_based_synthesis( pi ), pi, "dbs exhaustive 2var" );
  } while ( std::next_permutation( images.begin(), images.end() ) );
}

TEST( dbs_test, random_permutations_up_to_6_vars )
{
  for ( uint32_t num_vars = 1u; num_vars <= 6u; ++num_vars )
  {
    for ( uint64_t seed = 0u; seed < 10u; ++seed )
    {
      const auto pi = permutation::random( num_vars, seed * 23u + num_vars );
      expect_realizes( decomposition_based_synthesis( pi ), pi, "dbs random" );
    }
  }
}

TEST( dbs_test, benchmark_families )
{
  for ( const auto& pi : { hwb_permutation( 6u ), gray_code_permutation( 6u ),
                           modular_adder_permutation( 6u, 11u ),
                           modular_multiplier_permutation( 6u, 5u ) } )
  {
    expect_realizes( decomposition_based_synthesis( pi ), pi, "dbs benchmark" );
  }
}

TEST( esop_synthesis_test, single_output_bennett_form )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto circuit = esop_based_synthesis( f );
  EXPECT_EQ( circuit.num_lines(), 5u );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    /* y = 0 input: output line must carry f(x), inputs unchanged */
    const auto out = circuit.simulate( x );
    EXPECT_EQ( out & 0xfu, x );
    EXPECT_EQ( ( out >> 4u ) & 1u, f.get_bit( x ) ? 1u : 0u );
    /* y = 1: XOR semantics */
    const auto out1 = circuit.simulate( x | ( 1u << 4u ) );
    EXPECT_EQ( ( out1 >> 4u ) & 1u, f.get_bit( x ) ? 0u : 1u );
  }
}

TEST( esop_synthesis_test, multi_output )
{
  const std::vector<truth_table> outputs{
      majority_function( 3u ),
      truth_table::projection( 3u, 0u ) ^ truth_table::projection( 3u, 2u ),
      ~truth_table( 3u ) };
  const auto circuit = esop_based_synthesis( outputs );
  EXPECT_EQ( circuit.num_lines(), 6u );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    const auto out = circuit.simulate( x );
    EXPECT_EQ( out & 7u, x );
    for ( uint32_t j = 0u; j < 3u; ++j )
    {
      EXPECT_EQ( ( out >> ( 3u + j ) ) & 1u, outputs[j].get_bit( x ) ? 1u : 0u );
    }
  }
}

TEST( esop_synthesis_test, rejects_bad_input )
{
  EXPECT_THROW( esop_based_synthesis( std::vector<truth_table>{} ), std::invalid_argument );
  EXPECT_THROW( esop_based_synthesis( std::vector<truth_table>{ truth_table( 2u ),
                                                                truth_table( 3u ) } ),
                std::invalid_argument );
}

TEST( single_target_test, lowering_matches_control_function )
{
  rev_circuit circuit( 4u );
  const auto control = majority_function( 3u );
  append_single_target_gate( circuit, control, { 0u, 1u, 2u }, 3u );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const auto out = circuit.simulate( x );
    EXPECT_EQ( out & 7u, x & 7u );
    const bool flipped = ( ( out >> 3u ) & 1u ) != ( ( x >> 3u ) & 1u );
    EXPECT_EQ( flipped, control.get_bit( x & 7u ) );
  }
}

TEST( single_target_test, scattered_control_lines )
{
  rev_circuit circuit( 5u );
  const auto control = truth_table::projection( 2u, 0u ) ^ truth_table::projection( 2u, 1u );
  append_single_target_gate( circuit, control, { 4u, 1u }, 2u );
  for ( uint64_t x = 0u; x < 32u; ++x )
  {
    const auto out = circuit.simulate( x );
    const bool flipped = ( ( out >> 2u ) & 1u ) != ( ( x >> 2u ) & 1u );
    const bool expected = ( ( x >> 4u ) & 1u ) != ( ( x >> 1u ) & 1u );
    EXPECT_EQ( flipped, expected );
  }
}

TEST( single_target_test, validation )
{
  rev_circuit circuit( 3u );
  EXPECT_THROW( append_single_target_gate( circuit, truth_table( 2u ), { 0u }, 2u ),
                std::invalid_argument );
  EXPECT_THROW( append_single_target_gate( circuit, truth_table( 2u ), { 0u, 2u }, 2u ),
                std::invalid_argument );
}

TEST( revgen_test, hwb_permutation_definition )
{
  const auto pi = hwb_permutation( 4u );
  EXPECT_EQ( pi[0u], 0u );
  /* 0001 has weight 1 -> rotl by 1 = 0010 */
  EXPECT_EQ( pi[1u], 2u );
  /* 0011 has weight 2 -> rotl by 2 = 1100 */
  EXPECT_EQ( pi[3u], 12u );
  /* 1111 rotates to itself */
  EXPECT_EQ( pi[15u], 15u );
}

TEST( revgen_test, generators_are_bijections )
{
  for ( const auto& pi : { hwb_permutation( 6u ), modular_adder_permutation( 6u, 17u ),
                           rotation_permutation( 6u, 2u ), gray_code_permutation( 6u ),
                           modular_multiplier_permutation( 6u, 11u ) } )
  {
    EXPECT_TRUE( pi.compose( pi.inverse() ).is_identity() );
  }
  EXPECT_THROW( modular_multiplier_permutation( 4u, 2u ), std::invalid_argument );
}

TEST( embedding_test, bennett_embedding_layout )
{
  const auto f = majority_function( 3u );
  const auto g = bennett_embedding( f );
  EXPECT_EQ( g.num_vars(), 4u );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    EXPECT_EQ( g[x], x | ( f.get_bit( x ) ? 8u : 0u ) );
    EXPECT_EQ( g[x | 8u], x | ( f.get_bit( x ) ? 0u : 8u ) );
  }
}

TEST( embedding_test, bennett_multi_output )
{
  const std::vector<truth_table> outputs{ truth_table::projection( 2u, 0u ),
                                          truth_table::projection( 2u, 1u ) };
  const auto g = bennett_embedding( outputs );
  EXPECT_EQ( g.num_vars(), 4u );
  /* x = 01, y = 00 -> y' = 01 */
  EXPECT_EQ( g[0b0001u], 0b0101u );
  /* x = 10, y = 11 -> y' = 11 ^ 10 = 01 */
  EXPECT_EQ( g[0b1110u], 0b0110u );
}

TEST( embedding_test, greedy_embedding_realizes_function )
{
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto f = random_truth_table( 4u, seed + 400u );
    const auto g = greedy_embedding( f );
    EXPECT_EQ( g.num_vars(), 5u );
    for ( uint64_t x = 0u; x < 16u; ++x )
    {
      /* ancilla (MSB) = 0 rows: output bit 0 is f(x) */
      EXPECT_EQ( g[x] & 1u, f.get_bit( x ) ? 1u : 0u ) << "seed=" << seed << " x=" << x;
    }
  }
}

TEST( embedding_test, synthesis_of_embedded_function )
{
  const auto f = majority_function( 3u );
  const auto pi = bennett_embedding( f );
  const auto circuit = transformation_based_synthesis( pi );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    EXPECT_EQ( circuit.simulate( x ), x | ( f.get_bit( x ) ? 8u : 0u ) );
  }
}

class synthesis_cross_check_test : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P( synthesis_cross_check_test, all_methods_agree_on_random_permutation )
{
  const auto pi = permutation::random( 5u, GetParam() );
  const auto tbs = transformation_based_synthesis( pi );
  const auto bidi = transformation_based_synthesis_bidirectional( pi );
  const auto dbs = decomposition_based_synthesis( pi );
  for ( uint64_t x = 0u; x < pi.size(); ++x )
  {
    ASSERT_EQ( tbs.simulate( x ), pi[x] );
    ASSERT_EQ( bidi.simulate( x ), pi[x] );
    ASSERT_EQ( dbs.simulate( x ), pi[x] );
  }
}

INSTANTIATE_TEST_SUITE_P( seeds, synthesis_cross_check_test,
                          ::testing::Range( uint64_t{ 1000 }, uint64_t{ 1012 } ) );

} // namespace
} // namespace qda
