#include "kernel/bits.hpp"
#include "kernel/spectral.hpp"
#include "kernel/truth_table.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace qda
{
namespace
{

TEST( spectral_test, walsh_spectrum_of_constant_zero )
{
  const auto spectrum = walsh_spectrum( truth_table( 3u ) );
  EXPECT_EQ( spectrum[0], 8 );
  for ( size_t w = 1u; w < spectrum.size(); ++w )
  {
    EXPECT_EQ( spectrum[w], 0 );
  }
}

TEST( spectral_test, walsh_spectrum_of_linear_function )
{
  /* f(x) = x0 xor x2: spectrum concentrated at w = 101 */
  const auto f = truth_table::projection( 3u, 0u ) ^ truth_table::projection( 3u, 2u );
  const auto spectrum = walsh_spectrum( f );
  for ( uint64_t w = 0u; w < 8u; ++w )
  {
    EXPECT_EQ( spectrum[w], w == 0b101u ? 8 : 0 ) << "w=" << w;
  }
}

TEST( spectral_test, walsh_spectrum_matches_direct_sum )
{
  const auto f = random_truth_table( 6u, 123u );
  const auto spectrum = walsh_spectrum( f );
  for ( uint64_t w = 0u; w < f.num_bits(); ++w )
  {
    int64_t direct = 0;
    for ( uint64_t x = 0u; x < f.num_bits(); ++x )
    {
      const bool exponent = f.get_bit( x ) != parity64( x & w );
      direct += exponent ? -1 : 1;
    }
    ASSERT_EQ( spectrum[w], direct ) << "w=" << w;
  }
}

TEST( spectral_test, parseval_identity )
{
  const auto f = random_truth_table( 8u, 77u );
  const auto spectrum = walsh_spectrum( f );
  int64_t sum_of_squares = 0;
  for ( const auto coefficient : spectrum )
  {
    sum_of_squares += coefficient * coefficient;
  }
  EXPECT_EQ( sum_of_squares, int64_t{ 1 } << ( 2u * f.num_vars() ) );
}

TEST( spectral_test, inner_product_is_bent )
{
  EXPECT_TRUE( is_bent( inner_product_function( 1u ) ) );
  EXPECT_TRUE( is_bent( inner_product_function( 2u ) ) );
  EXPECT_TRUE( is_bent( inner_product_function( 3u ) ) );
  EXPECT_TRUE( is_bent( inner_product_function( 2u, /*interleaved=*/true ) ) );
}

TEST( spectral_test, linear_functions_are_not_bent )
{
  EXPECT_FALSE( is_bent( truth_table::projection( 4u, 0u ) ) );
  EXPECT_FALSE( is_bent( truth_table::constant( 4u, false ) ) );
}

TEST( spectral_test, odd_variable_count_is_never_bent )
{
  EXPECT_FALSE( is_bent( majority_function( 3u ) ) );
  EXPECT_FALSE( is_bent( random_truth_table( 5u, 3u ) ) );
}

TEST( spectral_test, inner_product_is_self_dual )
{
  const auto f = inner_product_function( 2u );
  EXPECT_EQ( dual_bent_function( f ), f );
  const auto g = inner_product_function( 2u, /*interleaved=*/true );
  EXPECT_EQ( dual_bent_function( g ), g );
}

TEST( spectral_test, dual_of_dual_is_identity )
{
  /* Maiorana-McFarland style bent function with nontrivial permutation:
   * f(x, y) = x . pi(y), built directly over 4 variables */
  truth_table f( 4u );
  const uint64_t pi[4] = { 0u, 2u, 3u, 1u };
  for ( uint64_t a = 0u; a < 16u; ++a )
  {
    const uint64_t x = a & 3u;
    const uint64_t y = ( a >> 2u ) & 3u;
    f.set_bit( a, parity64( x & pi[y] ) );
  }
  ASSERT_TRUE( is_bent( f ) );
  const auto dual = dual_bent_function( f );
  EXPECT_TRUE( is_bent( dual ) );
  EXPECT_EQ( dual_bent_function( dual ), f );
}

TEST( spectral_test, dual_requires_bent_input )
{
  EXPECT_THROW( dual_bent_function( truth_table::projection( 4u, 0u ) ), std::invalid_argument );
  EXPECT_THROW( dual_bent_function( majority_function( 3u ) ), std::invalid_argument );
}

TEST( spectral_test, bent_functions_achieve_maximum_nonlinearity )
{
  const auto f = inner_product_function( 2u );
  /* max nonlinearity for n=4 is 2^3 - 2^1 = 6 */
  EXPECT_EQ( nonlinearity( f ), 6u );
  EXPECT_EQ( nonlinearity( truth_table::projection( 4u, 0u ) ), 0u );
}

TEST( spectral_test, shift_function_matches_definition )
{
  const auto f = random_truth_table( 5u, 11u );
  const auto g = shift_function( f, 0b10110u );
  for ( uint64_t x = 0u; x < f.num_bits(); ++x )
  {
    ASSERT_EQ( g.get_bit( x ), f.get_bit( x ^ 0b10110u ) );
  }
  EXPECT_EQ( shift_function( f, 0u ), f );
  EXPECT_EQ( shift_function( g, 0b10110u ), f );
}

TEST( spectral_test, autocorrelation_of_bent_function_is_flat_zero )
{
  const auto f = inner_product_function( 3u );
  const auto autocorrelation = autocorrelation_spectrum( f );
  EXPECT_EQ( autocorrelation[0], 64 );
  for ( size_t s = 1u; s < autocorrelation.size(); ++s )
  {
    EXPECT_EQ( autocorrelation[s], 0 ) << "s=" << s;
  }
}

TEST( spectral_test, autocorrelation_matches_direct_computation )
{
  const auto f = random_truth_table( 5u, 17u );
  const auto autocorrelation = autocorrelation_spectrum( f );
  for ( uint64_t s = 0u; s < f.num_bits(); ++s )
  {
    int64_t direct = 0;
    for ( uint64_t x = 0u; x < f.num_bits(); ++x )
    {
      direct += ( f.get_bit( x ) != f.get_bit( x ^ s ) ) ? -1 : 1;
    }
    ASSERT_EQ( autocorrelation[s], direct ) << "s=" << s;
  }
}

TEST( spectral_test, fast_walsh_hadamard_rejects_non_power_of_two )
{
  std::vector<int64_t> data( 3u, 1 );
  EXPECT_THROW( fast_walsh_hadamard( data ), std::invalid_argument );
}

class bent_shift_property_test : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P( bent_shift_property_test, shifted_bent_function_stays_bent )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto g = shift_function( f, GetParam() );
  EXPECT_TRUE( is_bent( g ) );
}

INSTANTIATE_TEST_SUITE_P( all_shifts, bent_shift_property_test,
                          ::testing::Range( uint64_t{ 0 }, uint64_t{ 16 } ) );

} // namespace
} // namespace qda
