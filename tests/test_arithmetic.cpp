#include "kernel/bits.hpp"
#include "synthesis/arithmetic.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

/*! Packs operands into the adder input layout. */
uint64_t pack_operands( uint32_t num_bits, uint64_t a, uint64_t b, bool carry_out_line )
{
  uint64_t state = 0u;
  state |= a << 1u;
  state |= b << ( num_bits + 1u );
  (void)carry_out_line;
  return state;
}

TEST( adder_test, full_adder_exhaustive_small )
{
  for ( uint32_t n = 1u; n <= 4u; ++n )
  {
    const auto adder = ripple_carry_adder( n );
    const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;
    for ( uint64_t a = 0u; a <= mask; ++a )
    {
      for ( uint64_t b = 0u; b <= mask; ++b )
      {
        const uint64_t out = adder.simulate( pack_operands( n, a, b, true ) );
        const uint64_t sum = ( out >> ( n + 1u ) ) & mask;
        const bool carry = test_bit( out, 2u * n + 1u );
        const bool ancilla = test_bit( out, 0u );
        const uint64_t a_out = ( out >> 1u ) & mask;
        ASSERT_EQ( sum, ( a + b ) & mask ) << "n=" << n << " a=" << a << " b=" << b;
        ASSERT_EQ( carry, ( ( a + b ) >> n ) & 1u ) << "carry n=" << n;
        ASSERT_EQ( a_out, a ) << "operand a must be restored";
        ASSERT_FALSE( ancilla ) << "carry ancilla must end clean";
      }
    }
  }
}

TEST( adder_test, modular_adder_exhaustive_small )
{
  for ( uint32_t n = 1u; n <= 4u; ++n )
  {
    const auto adder = modular_ripple_adder( n );
    const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;
    for ( uint64_t a = 0u; a <= mask; ++a )
    {
      for ( uint64_t b = 0u; b <= mask; ++b )
      {
        const uint64_t out = adder.simulate( pack_operands( n, a, b, false ) );
        ASSERT_EQ( ( out >> ( n + 1u ) ) & mask, ( a + b ) & mask );
        ASSERT_EQ( ( out >> 1u ) & mask, a );
        ASSERT_FALSE( test_bit( out, 0u ) );
      }
    }
  }
}

TEST( adder_test, wide_operands_sampled )
{
  constexpr uint32_t n = 16u;
  const auto adder = modular_ripple_adder( n );
  const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;
  std::mt19937_64 rng( 3u );
  for ( uint32_t trial = 0u; trial < 200u; ++trial )
  {
    const uint64_t a = rng() & mask;
    const uint64_t b = rng() & mask;
    const uint64_t out = adder.simulate( pack_operands( n, a, b, false ) );
    ASSERT_EQ( ( out >> ( n + 1u ) ) & mask, ( a + b ) & mask );
  }
}

TEST( adder_test, subtractor )
{
  constexpr uint32_t n = 5u;
  const auto sub = modular_ripple_subtractor( n );
  const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;
  for ( uint64_t a = 0u; a <= mask; ++a )
  {
    for ( uint64_t b = 0u; b <= mask; b += 3u )
    {
      const uint64_t out = sub.simulate( pack_operands( n, a, b, false ) );
      ASSERT_EQ( ( out >> ( n + 1u ) ) & mask, ( b - a ) & mask ) << "a=" << a << " b=" << b;
      ASSERT_EQ( ( out >> 1u ) & mask, a );
    }
  }
}

TEST( adder_test, constant_adder )
{
  constexpr uint32_t n = 6u;
  const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;
  for ( const uint64_t constant : { 0ull, 1ull, 13ull, 63ull } )
  {
    const auto circuit = constant_adder( n, constant );
    for ( uint64_t b = 0u; b <= mask; b += 5u )
    {
      const uint64_t out = circuit.simulate( b );
      ASSERT_EQ( out & mask, ( b + constant ) & mask ) << "c=" << constant << " b=" << b;
      /* helpers (carry + constant register) must end clean */
      ASSERT_EQ( out >> n, 0u ) << "dirty helpers for c=" << constant;
    }
  }
}

TEST( adder_test, constant_adder_matches_revgen_permutation )
{
  constexpr uint32_t n = 5u;
  const auto circuit = constant_adder( n, 11u );
  const auto reference = adder_permutation_for_fixed_a( n, 11u );
  for ( uint64_t b = 0u; b < reference.size(); ++b )
  {
    ASSERT_EQ( circuit.simulate( b ) & ( reference.size() - 1u ), reference[b] );
  }
}

TEST( adder_test, adder_is_reversible )
{
  const auto adder = ripple_carry_adder( 3u );
  const auto inverse = adder.inverse();
  for ( uint64_t x = 0u; x < ( uint64_t{ 1 } << adder.num_lines() ); x += 7u )
  {
    ASSERT_EQ( inverse.simulate( adder.simulate( x ) ), x );
  }
}

TEST( adder_test, gate_counts_scale_linearly )
{
  /* CDKM: 2 MAJ/UMA blocks of 3 gates per bit + 1 carry CNOT */
  const auto small = ripple_carry_adder( 4u );
  const auto large = ripple_carry_adder( 8u );
  EXPECT_EQ( small.num_gates(), 6u * 4u + 1u );
  EXPECT_EQ( large.num_gates(), 6u * 8u + 1u );
}

TEST( adder_test, input_validation )
{
  EXPECT_THROW( ripple_carry_adder( 0u ), std::invalid_argument );
  EXPECT_THROW( ripple_carry_adder( 32u ), std::invalid_argument );
  EXPECT_THROW( constant_adder( 32u, 1u ), std::invalid_argument );
}

} // namespace
} // namespace qda
