/*! \file test_simulator_perf_paths.cpp
 *  \brief Randomized cross-checks of the high-throughput simulation
 *         engine against the naive reference paths.
 *
 *  The fused/specialized/threaded state-vector pipeline and the
 *  snapshot-sampling stabilizer backend must agree with the scalar
 *  gate-by-gate reference amplitude-for-amplitude (1e-12) and, at a
 *  fixed seed, count-for-count.
 */
#include "core/engine.hpp"
#include "core/hidden_shift.hpp"
#include "simulator/fusion.hpp"
#include "simulator/kernels.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

constexpr double amplitude_tolerance = 1e-12;

/*! Random Clifford+T circuit, optionally with rotations, multi-control
 *  gates, swaps and global phases. */
qcircuit random_circuit( uint32_t num_qubits, uint32_t num_gates, uint64_t seed,
                         bool with_rotations = true )
{
  std::mt19937_64 rng( seed );
  qcircuit circuit( num_qubits );
  for ( uint32_t g = 0u; g < num_gates; ++g )
  {
    const uint32_t q = rng() % num_qubits;
    switch ( rng() % 16u )
    {
    case 0u: circuit.h( q ); break;
    case 1u: circuit.x( q ); break;
    case 2u: circuit.y( q ); break;
    case 3u: circuit.z( q ); break;
    case 4u: circuit.s( q ); break;
    case 5u: circuit.sdg( q ); break;
    case 6u: circuit.t( q ); break;
    case 7u: circuit.tdg( q ); break;
    case 8u:
      if ( with_rotations )
      {
        circuit.rz( q, 0.1 * static_cast<double>( rng() % 60u ) );
      }
      else
      {
        circuit.s( q );
      }
      break;
    case 9u:
      if ( with_rotations )
      {
        circuit.rx( q, 0.1 * static_cast<double>( rng() % 60u ) );
      }
      else
      {
        circuit.h( q );
      }
      break;
    case 10u: circuit.cx( q, ( q + 1u ) % num_qubits ); break;
    case 11u: circuit.cz( q, ( q + 1u + rng() % ( num_qubits - 1u ) ) % num_qubits ); break;
    case 12u: circuit.swap_( q, ( q + 1u ) % num_qubits ); break;
    case 13u:
    {
      if ( num_qubits >= 4u )
      {
        const uint32_t t = ( q + 3u ) % num_qubits;
        circuit.mcx( { q, ( q + 1u ) % num_qubits, ( q + 2u ) % num_qubits }, t );
      }
      else
      {
        circuit.cx( q, ( q + 1u ) % num_qubits );
      }
      break;
    }
    case 14u:
    {
      if ( num_qubits >= 3u )
      {
        circuit.mcz( { q, ( q + 1u ) % num_qubits }, ( q + 2u ) % num_qubits );
      }
      else
      {
        circuit.cz( q, ( q + 1u ) % num_qubits );
      }
      break;
    }
    default: circuit.global_phase( 0.01 * static_cast<double>( rng() % 100u ) ); break;
    }
  }
  return circuit;
}

void expect_states_close( const std::vector<std::complex<double>>& fused,
                          const std::vector<std::complex<double>>& naive, const char* label )
{
  ASSERT_EQ( fused.size(), naive.size() );
  double worst = 0.0;
  for ( uint64_t i = 0u; i < fused.size(); ++i )
  {
    worst = std::max( worst, std::abs( fused[i] - naive[i] ) );
  }
  EXPECT_LT( worst, amplitude_tolerance ) << label;
}

/*! The pre-rework `sample_counts`: unitary part into a fresh circuit,
 *  naive run, per-shot O(2^n) scan. */
std::map<uint64_t, uint64_t> naive_sample_counts( const qcircuit& circuit, uint64_t shots,
                                                  uint64_t seed )
{
  qcircuit unitary_part( circuit.num_qubits() );
  std::vector<uint32_t> measured;
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::measure )
    {
      measured.push_back( gate.target );
    }
    else if ( gate.kind != gate_kind::barrier )
    {
      unitary_part.add_gate( gate );
    }
  }
  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run_naive( unitary_part );
  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    const uint64_t full = simulator.sample( rng );
    uint64_t key = 0u;
    for ( uint32_t i = 0u; i < measured.size(); ++i )
    {
      if ( ( full >> measured[i] ) & 1u )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

/*! Per-shot full re-run stabilizer sampler sharing one RNG stream (the
 *  snapshot sampler must match it bit-for-bit). */
std::map<uint64_t, uint64_t> naive_stabilizer_counts( const qcircuit& circuit, uint64_t shots,
                                                      uint64_t seed )
{
  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    stabilizer_simulator simulator( circuit.num_qubits() );
    uint64_t key = 0u;
    uint32_t measure_index = 0u;
    for ( const auto& gate : circuit.gates() )
    {
      if ( gate.kind == gate_kind::measure )
      {
        const bool bit = simulator.measure( gate.target, rng );
        if ( bit && measure_index < 64u )
        {
          key |= uint64_t{ 1 } << measure_index;
        }
        ++measure_index;
      }
      else
      {
        simulator.apply_gate( gate );
      }
    }
    ++counts[key];
  }
  return counts;
}

TEST( perf_paths_test, fused_matches_naive_on_random_clifford_t_circuits )
{
  for ( uint64_t seed = 0u; seed < 20u; ++seed )
  {
    const auto circuit = random_circuit( 6u, 120u, 1000u + seed );
    statevector_simulator fused( 6u );
    fused.run( circuit );
    statevector_simulator naive( 6u );
    naive.run_naive( circuit );
    expect_states_close( fused.state(), naive.state(), "random Clifford+T" );
  }
}

TEST( perf_paths_test, long_single_qubit_fusion_runs )
{
  /* >64 consecutive single-qubit gates on one qubit must fold into one
   * 2x2 product (and interleaved runs on other qubits must not leak) */
  std::mt19937_64 rng( 7u );
  qcircuit circuit( 3u );
  for ( uint32_t i = 0u; i < 100u; ++i )
  {
    const uint32_t q = i % 10u < 7u ? 1u : 0u; /* long run on qubit 1 */
    switch ( rng() % 5u )
    {
    case 0u: circuit.h( q ); break;
    case 1u: circuit.t( q ); break;
    case 2u: circuit.s( q ); break;
    case 3u: circuit.rx( q, 0.37 ); break;
    default: circuit.rz( q, -0.83 ); break;
    }
  }
  const auto prog = sim::compile( circuit );
  EXPECT_LE( prog.ops.size(), 4u ) << "100 single-qubit gates should fuse into <= 4 ops";
  EXPECT_EQ( prog.source_gate_count, 100u );

  statevector_simulator fused( 3u );
  fused.run( circuit );
  statevector_simulator naive( 3u );
  naive.run_naive( circuit );
  expect_states_close( fused.state(), naive.state(), "long 1q run" );
}

TEST( perf_paths_test, diagonal_runs_merge_into_phase_tables )
{
  /* a CZ ladder interleaved with T gates is one diagonal run; with a
   * table cap of 12 qubits, 16 qubits force at least two tables */
  qcircuit circuit( 16u );
  for ( uint32_t q = 0u; q < 16u; ++q )
  {
    circuit.t( q );
  }
  for ( uint32_t q = 0u; q + 1u < 16u; ++q )
  {
    circuit.cz( q, q + 1u );
  }
  circuit.mcz( { 0u, 1u, 2u }, 3u );
  const auto prog = sim::compile( circuit );
  /* everything is diagonal: only diagonal ops survive (a lone trailing
   * factor may flush as a specialized masked phase) */
  for ( const auto& o : prog.ops )
  {
    EXPECT_TRUE( o.kind == sim::op_kind::diag_table || o.kind == sim::op_kind::phase_masked );
  }
  EXPECT_GE( prog.ops.size(), 2u );
  EXPECT_LE( prog.ops.size(), 4u );

  statevector_simulator fused( 16u );
  qcircuit walls( 16u );
  for ( uint32_t q = 0u; q < 16u; ++q )
  {
    walls.h( q );
  }
  fused.run( walls );
  fused.run( circuit );
  statevector_simulator naive( 16u );
  naive.run_naive( walls );
  naive.run_naive( circuit );
  expect_states_close( fused.state(), naive.state(), "diagonal tables" );
}

TEST( perf_paths_test, threaded_execution_is_deterministic_and_correct )
{
  /* 17 qubits crosses the parallel threshold; results must be
   * bit-identical across thread counts and match the naive reference */
  const auto circuit = random_circuit( 17u, 200u, 9001u );

  sim::set_num_threads( 1u );
  statevector_simulator serial( 17u );
  serial.run( circuit );

  sim::set_num_threads( 5u );
  statevector_simulator threaded( 17u );
  threaded.run( circuit );
  sim::set_num_threads( 0u ); /* restore automatic */

  ASSERT_EQ( serial.state().size(), threaded.state().size() );
  for ( uint64_t i = 0u; i < serial.state().size(); ++i )
  {
    ASSERT_EQ( serial.state()[i], threaded.state()[i] ) << "thread-count dependent at " << i;
  }

  statevector_simulator naive( 17u );
  naive.run_naive( circuit );
  expect_states_close( threaded.state(), naive.state(), "threaded 17-qubit" );

  /* deterministic reductions too */
  EXPECT_EQ( serial.norm(), threaded.norm() );
}

TEST( perf_paths_test, sample_counts_bit_identical_to_naive_reference )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    auto circuit = random_circuit( 6u, 80u, 5000u + seed );
    circuit.measure_all();
    const auto fast = sample_counts( circuit, 2048u, 17u + seed );
    const auto reference = naive_sample_counts( circuit, 2048u, 17u + seed );
    EXPECT_EQ( fast, reference ) << "seed=" << seed;
  }
}

TEST( perf_paths_test, sample_counts_partial_measurement_keys )
{
  qcircuit circuit( 4u );
  circuit.h( 0u );
  circuit.cx( 0u, 2u );
  circuit.x( 3u );
  circuit.measure( 2u );
  circuit.measure( 3u );
  const auto counts = sample_counts( circuit, 512u, 3u );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : counts )
  {
    EXPECT_TRUE( outcome == 0b10u || outcome == 0b11u ) << outcome;
    total += count;
  }
  EXPECT_EQ( total, 512u );
}

TEST( perf_paths_test, apply_gate_specialized_matches_naive )
{
  /* single-gate dispatch (no fusion) must agree gate by gate */
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto circuit = random_circuit( 5u, 60u, 7000u + seed );
    /* entangle a bit first so every kernel sees non-trivial amplitudes */
    qcircuit prep( 5u );
    for ( uint32_t q = 0u; q < 5u; ++q )
    {
      prep.h( q );
    }
    statevector_simulator specialized( 5u );
    specialized.run_naive( prep );
    for ( const auto& gate : circuit.gates() )
    {
      specialized.apply_gate( gate ); /* per-gate specialized dispatch */
    }
    statevector_simulator naive( 5u );
    naive.run_naive( prep );
    naive.run_naive( circuit );
    expect_states_close( specialized.state(), naive.state(), "specialized apply_gate" );
  }
}

TEST( perf_paths_test, build_unitary_matches_column_by_column_naive )
{
  const auto circuit = random_circuit( 5u, 60u, 4242u );
  const auto fast = build_unitary( circuit );
  /* naive reference: one full circuit re-run per basis column */
  const uint64_t dimension = uint64_t{ 1 } << 5u;
  statevector_simulator simulator( 5u );
  for ( uint64_t column = 0u; column < dimension; ++column )
  {
    simulator.set_basis_state( column );
    simulator.run_naive( circuit );
    ASSERT_EQ( fast[column].size(), simulator.state().size() );
    for ( uint64_t row = 0u; row < dimension; ++row )
    {
      ASSERT_LT( std::abs( fast[column][row] - simulator.state()[row] ), amplitude_tolerance )
          << "column " << column << " row " << row;
    }
  }
}

TEST( perf_paths_test, stabilizer_snapshot_sampler_bit_identical_to_rerun )
{
  std::mt19937_64 rng( 21u );
  for ( uint32_t trial = 0u; trial < 10u; ++trial )
  {
    qcircuit circuit( 5u );
    for ( uint32_t g = 0u; g < 40u; ++g )
    {
      const uint32_t q = rng() % 5u;
      switch ( rng() % 9u )
      {
      case 0u: circuit.h( q ); break;
      case 1u: circuit.s( q ); break;
      case 2u: circuit.sdg( q ); break;
      case 3u: circuit.x( q ); break;
      case 4u: circuit.y( q ); break;
      case 5u: circuit.z( q ); break;
      case 6u: circuit.cx( q, ( q + 1u ) % 5u ); break;
      case 7u: circuit.swap_( q, ( q + 2u ) % 5u ); break;
      default: circuit.cz( q, ( q + 1u + rng() % 3u ) % 5u ); break;
      }
    }
    circuit.measure_all();
    const auto fast = stabilizer_sample_counts( circuit, 512u, 100u + trial );
    const auto reference = naive_stabilizer_counts( circuit, 512u, 100u + trial );
    EXPECT_EQ( fast, reference ) << "trial=" << trial;
  }
}

TEST( perf_paths_test, stabilizer_snapshot_sampler_with_mid_circuit_measurements )
{
  /* gates after the first measurement land in the replayed tail */
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure( 0u );
  circuit.h( 2u );
  circuit.cx( 2u, 1u );
  circuit.measure( 1u );
  circuit.measure( 2u );
  const auto fast = stabilizer_sample_counts( circuit, 1024u, 5u );
  const auto reference = naive_stabilizer_counts( circuit, 1024u, 5u );
  EXPECT_EQ( fast, reference );
}

TEST( perf_paths_test, stabilizer_direct_gates_match_hs_compositions )
{
  /* X = H Z H, Z = S S, Y = Z X (up to phase), Sdg = Z S, CZ = H CX H,
   * SWAP = CX CX CX: with identical seeds the direct single-pass
   * updates must produce identical measurement outcomes */
  std::mt19937_64 rng( 77u );
  for ( uint32_t trial = 0u; trial < 25u; ++trial )
  {
    const uint64_t seed = 1234u + trial;
    stabilizer_simulator direct( 4u, seed );
    stabilizer_simulator composed( 4u, seed );
    for ( uint32_t g = 0u; g < 30u; ++g )
    {
      const uint32_t q = rng() % 4u;
      const uint32_t r = ( q + 1u + rng() % 3u ) % 4u;
      switch ( rng() % 8u )
      {
      case 0u:
        direct.apply_x( q );
        composed.apply_h( q );
        composed.apply_s( q );
        composed.apply_s( q );
        composed.apply_h( q );
        break;
      case 1u:
        direct.apply_y( q );
        composed.apply_s( q );
        composed.apply_s( q );
        composed.apply_h( q );
        composed.apply_s( q );
        composed.apply_s( q );
        composed.apply_h( q );
        break;
      case 2u:
        direct.apply_z( q );
        composed.apply_s( q );
        composed.apply_s( q );
        break;
      case 3u:
        direct.apply_sdg( q );
        composed.apply_s( q );
        composed.apply_s( q );
        composed.apply_s( q );
        break;
      case 4u:
        direct.apply_cz( q, r );
        composed.apply_h( r );
        composed.apply_cx( q, r );
        composed.apply_h( r );
        break;
      case 5u:
        direct.apply_swap( q, r );
        composed.apply_cx( q, r );
        composed.apply_cx( r, q );
        composed.apply_cx( q, r );
        break;
      case 6u:
        direct.apply_h( q );
        composed.apply_h( q );
        break;
      default:
        direct.apply_cx( q, r );
        composed.apply_cx( q, r );
        break;
      }
    }
    for ( uint32_t q = 0u; q < 4u; ++q )
    {
      ASSERT_EQ( direct.measure( q ), composed.measure( q ) )
          << "trial=" << trial << " qubit=" << q;
    }
  }
}

TEST( perf_paths_test, engine_sample_counts_matches_free_function )
{
  main_engine engine( 3u );
  engine.h( 0u );
  engine.cx( 0u, 1u );
  engine.x( 2u );
  engine.measure_all();
  const auto via_engine = engine.sample_counts( 1024u, 11u );
  const auto direct = sample_counts( engine.circuit(), 1024u, 11u );
  EXPECT_EQ( via_engine, direct );
}

TEST( perf_paths_test, stabilizer_seeded_hidden_shift_counts_are_pinned )
{
  /* regression for the seed + shot bug: one RNG stream for the whole
   * sampling run means counts are a pure function of (circuit, shots,
   * seed) and never correlate across overlapping calls.  Pinned on a
   * Bravyi-Gosset inner-product hidden-shift instance. */
  const std::vector<bool> shift{ true, false, true, true, false, false, true, false };
  const auto circuit = clifford_hidden_shift_circuit( 4u, shift );
  const auto counts = stabilizer_sample_counts( circuit, 4096u, 2026u );
  /* the plain inner-product instance is deterministic: one outcome */
  ASSERT_EQ( counts.size(), 1u );
  EXPECT_EQ( counts.begin()->first, 0b01001101u );
  EXPECT_EQ( counts.begin()->second, 4096u );

  /* a randomized variant (extra H layer) pins the stream itself */
  qcircuit randomized( 4u );
  randomized.h( 0u );
  randomized.h( 1u );
  randomized.cz( 0u, 1u );
  randomized.cx( 1u, 2u );
  randomized.h( 3u );
  randomized.measure_all();
  const auto pinned = stabilizer_sample_counts( randomized, 64u, 7u );
  const auto reference = naive_stabilizer_counts( randomized, 64u, 7u );
  EXPECT_EQ( pinned, reference );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : pinned )
  {
    total += count;
  }
  EXPECT_EQ( total, 64u );
  /* two disjoint calls must not reproduce each other's statistics the
   * way the old seed+shot scheme did for overlapping shot windows */
  const auto first_half = stabilizer_sample_counts( randomized, 32u, 7u );
  uint64_t first_total = 0u;
  for ( const auto& [outcome, count] : first_half )
  {
    first_total += count;
  }
  EXPECT_EQ( first_total, 32u );
}

} // namespace
} // namespace qda
