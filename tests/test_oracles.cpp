#include "core/oracles.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qda
{
namespace
{

/*! Checks that `circuit` is the diagonal (-1)^{f(x)} (up to global phase). */
void expect_phase_oracle( const qcircuit& circuit, const truth_table& f )
{
  const auto matrix = build_unitary( circuit );
  /* derive the global phase from basis state 0 */
  const auto reference = matrix[0][0];
  ASSERT_GT( std::abs( reference ), 0.5 );
  const double sign0 = f.get_bit( 0u ) ? -1.0 : 1.0;
  for ( uint64_t x = 0u; x < f.num_bits(); ++x )
  {
    for ( uint64_t row = 0u; row < f.num_bits(); ++row )
    {
      if ( row != x )
      {
        ASSERT_LT( std::abs( matrix[x][row] ), 1e-9 ) << "off-diagonal at " << x;
      }
    }
    const double expected_sign = ( f.get_bit( x ) ? -1.0 : 1.0 ) * sign0;
    const auto relative = matrix[x][x] / reference;
    ASSERT_NEAR( relative.real(), expected_sign, 1e-9 ) << "x=" << x;
    ASSERT_NEAR( relative.imag(), 0.0, 1e-9 ) << "x=" << x;
  }
}

TEST( phase_oracle_test, paper_fig4_predicate )
{
  const auto expr = boolean_expression::parse( "(a and b) ^ (c and d)" );
  expect_phase_oracle( phase_oracle_circuit( expr.to_truth_table() ), expr.to_truth_table() );
}

TEST( phase_oracle_test, linear_functions_need_only_z )
{
  const auto f = truth_table::projection( 3u, 0u ) ^ truth_table::projection( 3u, 2u );
  const auto circuit = phase_oracle_circuit( f );
  expect_phase_oracle( circuit, f );
  for ( const auto& gate : circuit.gates() )
  {
    EXPECT_EQ( gate.kind, gate_kind::z );
  }
}

TEST( phase_oracle_test, constant_one_is_global_phase )
{
  const auto circuit = phase_oracle_circuit( truth_table::constant( 2u, true ) );
  expect_phase_oracle( circuit, truth_table::constant( 2u, true ) );
}

TEST( phase_oracle_test, negative_literals_via_x_conjugation )
{
  const auto expr = boolean_expression::parse( "!a & b" );
  const auto f = expr.to_truth_table();
  expect_phase_oracle( phase_oracle_circuit( f ), f );
}

TEST( phase_oracle_test, random_functions )
{
  for ( uint64_t seed = 0u; seed < 15u; ++seed )
  {
    const auto f = random_truth_table( 4u, seed + 40u );
    expect_phase_oracle( phase_oracle_circuit( f ), f );
  }
}

TEST( phase_oracle_test, arity_mismatch_throws )
{
  main_engine eng( 3u );
  EXPECT_THROW( phase_oracle( eng, truth_table( 2u ), { 0u, 1u, 2u } ), std::invalid_argument );
}

TEST( phase_oracle_test, scattered_qubit_assignment )
{
  /* f(v0, v1) = v0 & v1 placed on qubits 2 and 0 of a 3-qubit engine */
  main_engine eng( 3u );
  const auto f = truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u );
  phase_oracle( eng, f, { 2u, 0u } );
  const auto matrix = build_unitary( eng.circuit() );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    const bool v0 = ( x >> 2u ) & 1u;
    const bool v1 = x & 1u;
    const double expected = ( v0 && v1 ) ? -1.0 : 1.0;
    ASSERT_NEAR( matrix[x][x].real(), expected, 1e-9 ) << x;
  }
}

TEST( permutation_oracle_test, all_synthesis_methods_agree )
{
  const auto pi = paper_fig7_permutation();
  for ( const auto method : { permutation_synthesis::tbs,
                              permutation_synthesis::tbs_bidirectional,
                              permutation_synthesis::dbs } )
  {
    const auto circuit = permutation_oracle_circuit( pi, method );
    EXPECT_TRUE( circuit_implements_permutation( circuit, pi.images() ) )
        << "method=" << static_cast<int>( method );
  }
}

TEST( permutation_oracle_test, random_permutations )
{
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto pi = permutation::random( 4u, seed + 11u );
    const auto circuit = permutation_oracle_circuit( pi );
    ASSERT_TRUE( circuit_implements_permutation( circuit, pi.images() ) ) << "seed=" << seed;
  }
}

TEST( permutation_oracle_test, streams_onto_selected_qubits )
{
  /* permutation on qubits {1, 3} of a 4-qubit engine: swap the two bits */
  main_engine eng( 4u );
  const auto pi = permutation::from_vector( { 0u, 2u, 1u, 3u } ); /* bit swap */
  permutation_oracle( eng, pi, { 1u, 3u } );
  statevector_simulator sim( 4u );
  qcircuit prep( 4u );
  prep.x( 1u );
  prep.append( eng.circuit() );
  sim.run( prep );
  /* bit at qubit 1 moves to qubit 3 */
  EXPECT_NEAR( sim.probability_of( 0b1000u ), 1.0, 1e-9 );
}

TEST( permutation_oracle_test, arity_mismatch_throws )
{
  main_engine eng( 3u );
  EXPECT_THROW( permutation_oracle( eng, permutation( 2u ), { 0u, 1u, 2u } ),
                std::invalid_argument );
}

TEST( permutation_oracle_test, dagger_block_gives_inverse )
{
  const auto pi = paper_fig7_permutation();
  main_engine eng( 3u );
  {
    auto daggered = eng.dagger();
    permutation_oracle( eng, pi, { 0u, 1u, 2u }, permutation_synthesis::dbs );
  }
  EXPECT_TRUE( circuit_implements_permutation( eng.circuit(), pi.inverse().images() ) );
}

} // namespace
} // namespace qda
