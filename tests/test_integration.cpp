/*! End-to-end and failure-injection tests across module boundaries:
 *  synthesis -> mapping -> optimization -> routing -> (noisy) execution.
 */
#include "core/deutsch_jozsa.hpp"
#include "core/flow.hpp"
#include "core/hidden_shift.hpp"
#include "core/ibm_backend.hpp"
#include "mapping/clifford_t.hpp"
#include "mapping/router.hpp"
#include "optimization/linear_synthesis.hpp"
#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "quantum/qasm.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/arithmetic.hpp"
#include "synthesis/esop_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( integration_test, full_pipeline_qasm_roundtrip )
{
  /* synthesize -> map -> optimize -> export QASM -> reimport -> equivalent */
  flow pipeline;
  pipeline.revgen_hwb( 4u ).tbs().revsimp().rptm().tpar().peephole();
  const auto& circuit = pipeline.quantum();
  const auto reimported = read_qasm( write_qasm( circuit ) );
  EXPECT_TRUE( circuits_equivalent( circuit, reimported ) );
}

TEST( integration_test, qasm_roundtrip_property_on_random_mapped_circuits )
{
  std::mt19937_64 rng( 66u );
  for ( uint32_t trial = 0u; trial < 10u; ++trial )
  {
    const auto pi = permutation::random( 3u, trial + 500u );
    const auto mapped = map_to_clifford_t( transformation_based_synthesis( pi ) );
    const auto optimized = phase_folding( mapped.circuit );
    const auto reimported = read_qasm( write_qasm( optimized ) );
    ASSERT_TRUE( circuits_equivalent( optimized, reimported ) ) << "trial=" << trial;
  }
}

TEST( integration_test, routed_hidden_shift_still_recovers_shift_noiselessly )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  for ( uint64_t shift = 0u; shift < 16u; shift += 3u )
  {
    const auto logical = hidden_shift_circuit( { f, shift } );
    const auto execution = run_on_ibm_model( logical, coupling_map::ibm_qx4(),
                                             noise_model::ideal(), 32u, 11u );
    ASSERT_EQ( execution.counts.size(), 1u ) << "shift=" << shift;
    ASSERT_EQ( execution.counts.begin()->first, shift ) << "shift=" << shift;
  }
}

TEST( integration_test, noise_injection_degrades_success_monotonically_in_rate )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto logical = hidden_shift_circuit( { f, 1u } );
  double previous_success = 1.1;
  for ( const double p2 : { 0.0, 0.02, 0.08, 0.25 } )
  {
    noise_model model = noise_model::ideal();
    model.p_two = p2;
    const auto execution =
        run_on_ibm_model( logical, coupling_map::ibm_qx4(), model, 2048u, 21u );
    const auto it = execution.counts.find( 1u );
    const double success =
        it == execution.counts.end() ? 0.0 : static_cast<double>( it->second ) / 2048.0;
    EXPECT_LT( success, previous_success + 0.02 ) << "p2=" << p2;
    previous_success = success;
  }
  /* heavy noise must not leave the correct answer dominant at ~1 */
  EXPECT_LT( previous_success, 0.8 );
}

TEST( integration_test, readout_failure_injection_flips_deterministic_bits )
{
  qcircuit circuit( 3u );
  circuit.x( 0u );
  circuit.measure_all();
  noise_model model = noise_model::ideal();
  model.p_readout = 1.0; /* fault injection: every readout inverted */
  const auto counts = sample_counts_noisy( circuit, model, 64u, 13u );
  ASSERT_EQ( counts.size(), 1u );
  EXPECT_EQ( counts.begin()->first, 0b110u ); /* all bits flipped */
}

TEST( integration_test, esop_synthesis_to_device_execution )
{
  /* an irreversible function end to end: Bennett embedding, Clifford+T,
   * routing, noiseless execution, compare against direct evaluation */
  const auto f = majority_function( 3u );
  const auto reversible = esop_based_synthesis( f );
  const auto mapped = map_to_clifford_t( reversible );

  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    qcircuit prep( mapped.circuit.num_qubits() );
    for ( uint32_t bit = 0u; bit < 3u; ++bit )
    {
      if ( ( x >> bit ) & 1u )
      {
        prep.x( bit );
      }
    }
    prep.append( mapped.circuit );
    prep.measure( 3u ); /* output line */
    const auto counts = sample_counts( prep, 16u, 5u );
    ASSERT_EQ( counts.size(), 1u );
    ASSERT_EQ( counts.begin()->first, f.get_bit( x ) ? 1u : 0u ) << "x=" << x;
  }
}

TEST( integration_test, adder_through_full_quantum_flow )
{
  /* CDKM adder -> Clifford+T -> phase folding -> still adds */
  constexpr uint32_t n = 3u;
  const auto adder = modular_ripple_adder( n );
  const auto mapped = map_to_clifford_t( adder );
  const auto optimized = phase_folding( mapped.circuit );
  const uint64_t mask = ( uint64_t{ 1 } << n ) - 1u;

  statevector_simulator simulator( optimized.num_qubits() );
  for ( uint64_t a = 0u; a <= mask; a += 2u )
  {
    for ( uint64_t b = 0u; b <= mask; b += 3u )
    {
      const uint64_t input = ( a << 1u ) | ( b << ( n + 1u ) );
      simulator.set_basis_state( input );
      simulator.run( optimized );
      const uint64_t expected = ( a << 1u ) | ( ( ( a + b ) & mask ) << ( n + 1u ) );
      ASSERT_NEAR( simulator.probability_of( expected ), 1.0, 1e-9 )
          << "a=" << a << " b=" << b;
    }
  }
}

TEST( integration_test, pmh_inside_full_pipeline )
{
  flow pipeline;
  pipeline.revgen_hwb( 4u ).tbs().revsimp().rptm().tpar();
  const auto before = pipeline.quantum();
  const auto resynthesized = resynthesize_linear_regions( before );
  EXPECT_TRUE( circuits_equivalent( resynthesized, before ) );
  EXPECT_LE( compute_statistics( resynthesized ).cnot_count,
             compute_statistics( before ).cnot_count );
}

TEST( integration_test, deutsch_jozsa_classifies_promise_functions )
{
  EXPECT_TRUE( deutsch_jozsa_is_constant( truth_table( 4u ) ) );
  EXPECT_TRUE( deutsch_jozsa_is_constant( truth_table::constant( 4u, true ) ) );
  EXPECT_FALSE( deutsch_jozsa_is_constant( truth_table::projection( 4u, 2u ) ) );
  /* majority over an odd variable count is balanced but nonlinear */
  EXPECT_FALSE( deutsch_jozsa_is_constant( majority_function( 3u ) ) );
  /* bent functions are *not* balanced: the promise is violated */
  EXPECT_THROW( deutsch_jozsa_is_constant( inner_product_function( 2u ) ),
                std::invalid_argument );
  EXPECT_THROW( deutsch_jozsa_is_constant( majority_function( 4u ) ), std::invalid_argument );
}

TEST( integration_test, deutsch_jozsa_balanced_sweep )
{
  /* every linear non-constant function is balanced */
  for ( uint32_t var = 0u; var < 5u; ++var )
  {
    EXPECT_FALSE( deutsch_jozsa_is_constant( truth_table::projection( 5u, var ) ) );
  }
}

TEST( integration_test, ascii_rendering_of_quantum_circuits )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure_all();
  const auto art = circuit.to_ascii();
  EXPECT_NE( art.find( "q0" ), std::string::npos );
  EXPECT_NE( art.find( "h" ), std::string::npos );
  EXPECT_NE( art.find( "*" ), std::string::npos );
  EXPECT_NE( art.find( "M" ), std::string::npos );
}

TEST( integration_test, mm_hidden_shift_through_clifford_t_lowering )
{
  /* the full Fig. 7 circuit lowered to Clifford+T still recovers s */
  const auto f = mm_bent_function::paper_fig7();
  const auto logical = hidden_shift_circuit_mm( f, 19u );
  const auto lowered = lower_multi_controlled_gates( logical );
  EXPECT_EQ( solve_hidden_shift( lowered.circuit ), 19u );
}

TEST( integration_test, lowered_circuits_are_qasm_exportable )
{
  /* a bare 3-control mcx has no QASM spelling; lowering fixes that */
  qcircuit logical( 4u );
  logical.h( 0u );
  logical.mcx( { 0u, 1u, 2u }, 3u );
  EXPECT_THROW( write_qasm( logical ), std::invalid_argument );
  const auto lowered = lower_multi_controlled_gates( logical );
  EXPECT_NO_THROW( write_qasm( lowered.circuit ) );
  EXPECT_EQ( lowered.num_helper_qubits, 1u );
}

} // namespace
} // namespace qda
