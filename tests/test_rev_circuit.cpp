#include "reversible/rev_circuit.hpp"
#include "reversible/rev_gate.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( rev_gate_test, constructors_and_validation )
{
  const auto g = rev_gate::toffoli( 0u, 1u, 2u );
  EXPECT_EQ( g.num_controls(), 2u );
  EXPECT_THROW( rev_gate( 0b100u, 0b100u, 2u ), std::invalid_argument ); /* target is control */
  EXPECT_THROW( rev_gate( 0u, 0u, 64u ), std::invalid_argument );
}

TEST( rev_gate_test, polarity_is_masked_to_controls )
{
  const rev_gate g( 0b011u, 0b111u, 3u );
  EXPECT_EQ( g.polarity, 0b011u );
}

TEST( rev_gate_test, activation_and_application )
{
  const auto g = rev_gate::toffoli( 0u, 1u, 2u );
  EXPECT_TRUE( g.is_active( 0b011u ) );
  EXPECT_FALSE( g.is_active( 0b001u ) );
  EXPECT_EQ( g.apply( 0b011u ), 0b111u );
  EXPECT_EQ( g.apply( 0b111u ), 0b011u );
  EXPECT_EQ( g.apply( 0b001u ), 0b001u );

  /* negative control */
  const auto neg = rev_gate::mct( { 0u }, { 1u }, 2u );
  EXPECT_TRUE( neg.is_active( 0b001u ) );
  EXPECT_FALSE( neg.is_active( 0b011u ) );
}

TEST( rev_gate_test, gates_are_involutions )
{
  const auto g = rev_gate::mct( { 1u, 3u }, { 2u }, 0u );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    EXPECT_EQ( g.apply( g.apply( x ) ), x );
  }
}

TEST( rev_gate_test, commutation_rules )
{
  const auto a = rev_gate::cnot( 0u, 1u );
  const auto b = rev_gate::cnot( 0u, 2u );
  const auto c = rev_gate::cnot( 1u, 2u );
  EXPECT_TRUE( a.commutes_with( b ) );  /* shared control only */
  EXPECT_FALSE( a.commutes_with( c ) ); /* a's target is c's control */
  EXPECT_TRUE( c.commutes_with( b ) );  /* same target */

  /* conflicting control polarities: never simultaneously active */
  const auto pos = rev_gate::mct( { 0u }, {}, 1u );
  const auto neg_polarity = rev_gate::mct( {}, { 0u }, 2u );
  const auto uses_target = rev_gate::mct( { 1u, 0u }, {}, 2u );
  EXPECT_TRUE( pos.commutes_with( neg_polarity ) );
  /* pos targets line 1 which controls uses_target positively, but they share
   * control 0 with the same polarity -> not trivially commuting */
  EXPECT_FALSE( uses_target.commutes_with( pos ) );
}

TEST( rev_gate_test, commutation_is_sound )
{
  /* whenever commutes_with says yes, the two orders agree pointwise */
  std::mt19937_64 rng( 3u );
  for ( uint32_t trial = 0u; trial < 200u; ++trial )
  {
    const uint32_t ta = rng() % 4u;
    uint32_t tb = rng() % 4u;
    const rev_gate a( rng() & 0xfu & ~( 1u << ta ), rng() & 0xfu, ta );
    const rev_gate b( rng() & 0xfu & ~( 1u << tb ), rng() & 0xfu, tb );
    if ( !a.commutes_with( b ) )
    {
      continue;
    }
    for ( uint64_t x = 0u; x < 16u; ++x )
    {
      ASSERT_EQ( a.apply( b.apply( x ) ), b.apply( a.apply( x ) ) )
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST( rev_gate_test, to_string_format )
{
  EXPECT_EQ( rev_gate::not_gate( 3u ).to_string(), "t1(x3)" );
  EXPECT_EQ( rev_gate::cnot( 0u, 1u ).to_string(), "t2(x0, x1)" );
  EXPECT_EQ( rev_gate::mct( { 0u }, { 2u }, 1u ).to_string(), "t3(x0, !x2, x1)" );
}

TEST( rev_circuit_test, construction_and_validation )
{
  rev_circuit circuit( 3u );
  EXPECT_EQ( circuit.num_lines(), 3u );
  EXPECT_TRUE( circuit.empty() );
  circuit.add_toffoli( 0u, 1u, 2u );
  EXPECT_EQ( circuit.num_gates(), 1u );
  EXPECT_THROW( circuit.add_not( 3u ), std::invalid_argument );
  EXPECT_THROW( circuit.add_gate( rev_gate::cnot( 3u, 0u ) ), std::invalid_argument );
  EXPECT_THROW( rev_circuit( 65u ), std::invalid_argument );
}

TEST( rev_circuit_test, simulate_simple_cascade )
{
  rev_circuit circuit( 3u );
  circuit.add_not( 0u );
  circuit.add_cnot( 0u, 1u );
  circuit.add_toffoli( 0u, 1u, 2u );
  /* input 000: NOT -> 001, CNOT -> 011, TOF -> 111 */
  EXPECT_EQ( circuit.simulate( 0b000u ), 0b111u );
  /* input 001: NOT -> 000, CNOT -> 000, TOF -> 000 */
  EXPECT_EQ( circuit.simulate( 0b001u ), 0b000u );
}

TEST( rev_circuit_test, inverse_reverses_computation )
{
  rev_circuit circuit( 4u );
  circuit.add_not( 0u );
  circuit.add_cnot( 0u, 2u );
  circuit.add_toffoli( 1u, 2u, 3u );
  circuit.add_gate( rev_gate::mct( { 0u }, { 3u }, 1u ) );
  const auto inverse = circuit.inverse();
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    EXPECT_EQ( inverse.simulate( circuit.simulate( x ) ), x );
  }
}

TEST( rev_circuit_test, to_permutation_is_bijective )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  circuit.add_cnot( 2u, 0u );
  const auto pi = circuit.to_permutation();
  EXPECT_EQ( pi.num_vars(), 3u );
  EXPECT_TRUE( pi.compose( pi.inverse() ).is_identity() );
}

TEST( rev_circuit_test, output_function_of_toffoli )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  const auto f = circuit.output_function( 2u );
  const auto expected = truth_table::projection( 3u, 2u ) ^
                        ( truth_table::projection( 3u, 0u ) & truth_table::projection( 3u, 1u ) );
  EXPECT_EQ( f, expected );
  EXPECT_EQ( circuit.output_function( 0u ), truth_table::projection( 3u, 0u ) );
}

TEST( rev_circuit_test, append_and_prepend )
{
  rev_circuit a( 2u );
  a.add_not( 0u );
  rev_circuit b( 2u );
  b.add_cnot( 0u, 1u );
  a.append( b );
  EXPECT_EQ( a.num_gates(), 2u );
  a.prepend_gate( rev_gate::not_gate( 1u ) );
  EXPECT_EQ( a.gate( 0u ), rev_gate::not_gate( 1u ) );

  rev_circuit c( 3u );
  EXPECT_THROW( a.append( c ), std::invalid_argument );
}

TEST( rev_circuit_test, cost_metrics )
{
  rev_circuit circuit( 5u );
  circuit.add_not( 0u );
  circuit.add_cnot( 0u, 1u );
  circuit.add_toffoli( 0u, 1u, 2u );
  circuit.add_gate( rev_gate::mct( { 0u, 1u, 2u }, {}, 3u ) );
  EXPECT_EQ( circuit.control_count(), 0u + 1u + 2u + 3u );
  const auto histogram = circuit.control_histogram();
  EXPECT_EQ( histogram[0], 1u );
  EXPECT_EQ( histogram[1], 1u );
  EXPECT_EQ( histogram[2], 1u );
  EXPECT_EQ( histogram[3], 1u );
  /* quantum cost: 1 + 1 + 5 + (2^4 - 3) */
  EXPECT_EQ( circuit.quantum_cost(), 1u + 1u + 5u + 13u );
}

TEST( rev_circuit_test, equivalence_checks )
{
  rev_circuit a( 2u );
  a.add_cnot( 0u, 1u );
  a.add_cnot( 0u, 1u );
  const rev_circuit identity( 2u );
  EXPECT_TRUE( equivalent( a, identity ) );

  rev_circuit b( 2u );
  b.add_not( 0u );
  EXPECT_FALSE( equivalent( b, identity ) );
  EXPECT_FALSE( equivalent( b, rev_circuit( 3u ) ) );
}

TEST( rev_circuit_test, ascii_rendering_mentions_all_lines )
{
  rev_circuit circuit( 2u );
  circuit.add_cnot( 0u, 1u );
  const auto art = circuit.to_ascii();
  EXPECT_NE( art.find( "x0" ), std::string::npos );
  EXPECT_NE( art.find( "(+)" ), std::string::npos );
  EXPECT_NE( art.find( " * " ), std::string::npos );
}

} // namespace
} // namespace qda
