#include "kernel/permutation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qda
{
namespace
{

TEST( permutation_test, identity_construction )
{
  const permutation id( 3u );
  EXPECT_EQ( id.num_vars(), 3u );
  EXPECT_EQ( id.size(), 8u );
  EXPECT_TRUE( id.is_identity() );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    EXPECT_EQ( id[x], x );
  }
}

TEST( permutation_test, from_vector_validates_bijection )
{
  EXPECT_NO_THROW( permutation::from_vector( { 0u, 2u, 3u, 1u } ) );
  EXPECT_THROW( permutation::from_vector( { 0u, 0u, 3u, 1u } ), std::invalid_argument );
  EXPECT_THROW( permutation::from_vector( { 0u, 4u, 3u, 1u } ), std::invalid_argument );
  EXPECT_THROW( permutation::from_vector( { 0u, 1u, 2u } ), std::invalid_argument );
}

TEST( permutation_test, paper_fig7_permutation_is_valid )
{
  const auto pi = permutation::from_vector( { 0u, 2u, 3u, 5u, 7u, 1u, 4u, 6u } );
  EXPECT_EQ( pi.num_vars(), 3u );
  EXPECT_EQ( pi[3u], 5u );
  EXPECT_FALSE( pi.is_identity() );
}

TEST( permutation_test, inverse_composes_to_identity )
{
  const auto pi = permutation::from_vector( { 0u, 2u, 3u, 5u, 7u, 1u, 4u, 6u } );
  const auto inv = pi.inverse();
  EXPECT_TRUE( pi.compose( inv ).is_identity() );
  EXPECT_TRUE( inv.compose( pi ).is_identity() );
}

TEST( permutation_test, random_permutations_are_valid_and_deterministic )
{
  const auto a = permutation::random( 6u, 1u );
  const auto b = permutation::random( 6u, 1u );
  const auto c = permutation::random( 6u, 2u );
  EXPECT_EQ( a, b );
  EXPECT_NE( a, c );
  EXPECT_TRUE( a.compose( a.inverse() ).is_identity() );
}

TEST( permutation_test, composition_order )
{
  /* this(other(x)) */
  const auto swap01 = permutation::from_vector( { 1u, 0u, 2u, 3u } );
  const auto rotate = permutation::from_vector( { 1u, 2u, 3u, 0u } );
  const auto composed = swap01.compose( rotate );
  EXPECT_EQ( composed[0u], 0u ); /* rotate: 0->1, swap01: 1->0 */
  EXPECT_EQ( composed[3u], 1u ); /* rotate: 3->0, swap01: 0->1 */
}

TEST( permutation_test, xor_constant_permutation )
{
  const auto pi = permutation::xor_constant( 3u, 0b101u );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    EXPECT_EQ( pi[x], x ^ 0b101u );
  }
  EXPECT_TRUE( pi.compose( pi ).is_identity() );
}

TEST( permutation_test, cycle_decomposition )
{
  const auto pi = permutation::from_vector( { 1u, 0u, 2u, 3u } );
  const auto cycles = pi.cycles();
  ASSERT_EQ( cycles.size(), 1u );
  EXPECT_EQ( cycles[0].size(), 2u );

  const auto rotate = permutation::from_vector( { 1u, 2u, 3u, 0u } );
  const auto rotate_cycles = rotate.cycles();
  ASSERT_EQ( rotate_cycles.size(), 1u );
  EXPECT_EQ( rotate_cycles[0].size(), 4u );

  EXPECT_TRUE( permutation( 2u ).cycles().empty() );
}

TEST( permutation_test, parity )
{
  EXPECT_FALSE( permutation( 3u ).is_odd() );
  EXPECT_TRUE( permutation::from_vector( { 1u, 0u, 2u, 3u } ).is_odd() );  /* one transposition */
  EXPECT_TRUE( permutation::from_vector( { 1u, 2u, 3u, 0u } ).is_odd() );  /* 4-cycle = 3 swaps */
  EXPECT_FALSE( permutation::from_vector( { 1u, 0u, 3u, 2u } ).is_odd() ); /* two transpositions */
}

TEST( permutation_test, cycles_reconstruct_permutation )
{
  const auto pi = permutation::random( 5u, 31u );
  permutation rebuilt( 5u );
  for ( const auto& cycle : pi.cycles() )
  {
    for ( size_t i = 0u; i < cycle.size(); ++i )
    {
      rebuilt.set_image( cycle[i], cycle[( i + 1u ) % cycle.size()] );
    }
  }
  EXPECT_EQ( rebuilt, pi );
}

} // namespace
} // namespace qda
