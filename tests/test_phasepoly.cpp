#include "mapping/clifford_t.hpp"
#include "optimization/phase_folding.hpp"
#include "phasepoly/phasepoly.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <random>

namespace qda
{
namespace
{

/* ---------------------------------------------------------------- */
/* bitvec: the dynamic-width parity vector                          */
/* ---------------------------------------------------------------- */

TEST( bitvec_test, set_test_across_word_boundaries )
{
  bitvec v;
  EXPECT_TRUE( v.none() );
  v.set( 0u );
  v.set( 63u );
  v.set( 64u );
  v.set( 200u );
  EXPECT_TRUE( v.test( 0u ) );
  EXPECT_TRUE( v.test( 63u ) );
  EXPECT_TRUE( v.test( 64u ) );
  EXPECT_TRUE( v.test( 200u ) );
  EXPECT_FALSE( v.test( 1u ) );
  EXPECT_FALSE( v.test( 128u ) );
  EXPECT_FALSE( v.test( 4000u ) );
  EXPECT_EQ( v.count(), 4u );
  EXPECT_EQ( v.top_bit(), 200u );
  EXPECT_EQ( v.to_string(), "{0, 63, 64, 200}" );
}

TEST( bitvec_test, equality_is_independent_of_construction_order )
{
  bitvec a;
  a.set( 700u );
  a.set( 3u );

  bitvec b;
  b.set( 3u );
  b.set( 700u );
  EXPECT_EQ( a, b );
  EXPECT_EQ( a.hash(), b.hash() );

  /* growing wide and shrinking back reaches the same canonical form */
  bitvec c;
  c.set( 3u );
  c.set( 700u );
  c.set( 9000u );
  c.flip( 9000u );
  EXPECT_EQ( a, c );
  EXPECT_EQ( a.hash(), c.hash() );
}

TEST( bitvec_test, high_only_vectors_are_compact_and_comparable )
{
  /* labels over late variables must not drag leading zero words */
  bitvec high;
  high.set( 9000u );
  bitvec low;
  low.set( 1u );
  EXPECT_TRUE( low < high );
  EXPECT_FALSE( high < low );
  EXPECT_FALSE( high < high );
  EXPECT_TRUE( high.test( 9000u ) );
  EXPECT_FALSE( high.test( 0u ) );
  EXPECT_EQ( high.count(), 1u );

  bitvec mixed = high ^ low;
  EXPECT_EQ( mixed.count(), 2u );
  EXPECT_TRUE( mixed.test( 1u ) );
  EXPECT_TRUE( mixed.test( 9000u ) );
  mixed ^= high;
  EXPECT_EQ( mixed, low );
}

TEST( bitvec_test, xor_cancels_and_renormalizes )
{
  bitvec a;
  a.set( 100u );
  a.set( 500u );
  bitvec b;
  b.set( 500u );
  a ^= b;
  bitvec expected;
  expected.set( 100u );
  EXPECT_EQ( a, expected );

  a ^= expected;
  EXPECT_TRUE( a.none() );
  EXPECT_EQ( a, bitvec{} );

  /* self-cancellation through the low word too */
  bitvec c{ 0xffu };
  c ^= bitvec{ 0xffu };
  EXPECT_TRUE( c.none() );
}

TEST( bitvec_test, inner_parity_and_iteration )
{
  bitvec a;
  a.set( 2u );
  a.set( 66u );
  a.set( 130u );
  bitvec b;
  b.set( 66u );
  b.set( 130u );
  EXPECT_FALSE( inner_parity( a, b ) ); /* overlap of 2 bits */
  b.set( 2u );
  EXPECT_TRUE( inner_parity( a, b ) ); /* overlap of 3 bits */

  std::vector<uint32_t> bits;
  a.for_each_set_bit( [&bits]( uint32_t index ) { bits.push_back( index ); } );
  EXPECT_EQ( bits, ( std::vector<uint32_t>{ 2u, 66u, 130u } ) );
}

TEST( parity_table_test, accumulates_and_survives_growth )
{
  phasepoly::parity_table table;
  std::vector<bitvec> keys;
  for ( uint32_t i = 0u; i < 300u; ++i )
  {
    bitvec key;
    key.set( i );
    key.set( 3u * i + 7u );
    keys.push_back( key );
    const auto [index, inserted] = table.find_or_insert( key );
    EXPECT_TRUE( inserted );
    EXPECT_EQ( index, i );
  }
  for ( uint32_t i = 0u; i < 300u; ++i )
  {
    const auto [index, inserted] = table.find_or_insert( keys[i] );
    EXPECT_FALSE( inserted );
    EXPECT_EQ( index, i );
    EXPECT_EQ( table.key( index ), keys[i] );
  }
  bitvec absent;
  absent.set( 4000u );
  EXPECT_EQ( table.find( absent ), phasepoly::parity_table::npos );
}

/* ---------------------------------------------------------------- */
/* extraction and parity-network synthesis                          */
/* ---------------------------------------------------------------- */

TEST( phase_polynomial_test, extracts_terms_and_affine_map )
{
  qcircuit circuit( 2u );
  circuit.t( 0u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u );
  circuit.x( 1u );
  circuit.tdg( 1u );

  const auto poly = phasepoly::extract_phase_polynomial(
      circuit, 0u, circuit.core().num_slots(), { 0u, 1u } );
  ASSERT_EQ( poly.num_vars, 2u );
  /* terms: x0 (angle pi/4), x0^x1 (pi/4 then -(-pi/4) through the X) */
  ASSERT_EQ( poly.terms.size(), 2u );
  bitvec x0;
  x0.set( 0u );
  bitvec x01;
  x01.set( 0u );
  x01.set( 1u );
  EXPECT_EQ( poly.terms[0].parity, x0 );
  EXPECT_NEAR( poly.terms[0].angle, std::numbers::pi / 4.0, 1e-12 );
  EXPECT_EQ( poly.terms[1].parity, x01 );
  EXPECT_NEAR( poly.terms[1].angle, std::numbers::pi / 2.0, 1e-12 );
  /* outputs: wire0 = x0, wire1 = x0^x1 (+) 1 */
  EXPECT_EQ( poly.output_linear[0], x0 );
  EXPECT_EQ( poly.output_linear[1], x01 );
  EXPECT_FALSE( poly.output_constants.test( 0u ) );
  EXPECT_TRUE( poly.output_constants.test( 1u ) );
}

TEST( parity_network_test, rebuilds_equivalent_regions )
{
  /* t . cx . t . cx . x pattern: resynthesis must reproduce the exact
   * unitary including the affine tail */
  qcircuit region( 3u );
  region.t( 0u );
  region.cx( 0u, 1u );
  region.cx( 1u, 2u );
  region.t( 2u );
  region.cx( 1u, 2u );
  region.x( 1u );
  region.s( 1u );

  const auto poly = phasepoly::extract_phase_polynomial(
      region, 0u, region.core().num_slots(), { 0u, 1u, 2u } );
  const auto network = phasepoly::synthesize_parity_network( poly );

  qcircuit rebuilt( 3u );
  for ( const auto& gate : network.gates )
  {
    rebuilt.add_gate( gate );
  }
  rebuilt.global_phase( network.global_phase );
  EXPECT_TRUE( circuits_equivalent( rebuilt, region ) );
}

TEST( parity_network_test, gray_code_linear_region_collapses )
{
  /* a staircase of redundant CNOTs computes a permutation PMH finds in
   * fewer gates */
  qcircuit circuit( 3u );
  circuit.cx( 0u, 1u );
  circuit.cx( 1u, 2u );
  circuit.cx( 0u, 1u );
  circuit.cx( 1u, 2u );
  circuit.cx( 0u, 2u );
  circuit.cx( 0u, 2u );
  const auto optimized = phasepoly::tpar( circuit );
  EXPECT_TRUE( circuits_equivalent( optimized, circuit ) );
  EXPECT_LT( optimized.num_gates(), circuit.num_gates() );
}

/* ---------------------------------------------------------------- */
/* the tpar pass: fold + resynthesis                                */
/* ---------------------------------------------------------------- */

TEST( tpar_test, merges_beyond_64_parity_labels )
{
  /* the former stand-in recycled 64 label bits in "epochs": after 64
   * fresh labels it relabeled every qubit, so these two T gates no
   * longer merged.  Unbounded labels must fold them into one S. */
  qcircuit circuit( 2u );
  circuit.t( 0u );
  for ( uint32_t i = 0u; i < 70u; ++i )
  {
    circuit.h( 1u ); /* 70 fresh labels on qubit 1 */
  }
  circuit.t( 0u );

  const auto folded = phase_folding( circuit );
  EXPECT_EQ( compute_statistics( folded ).t_count, 0u );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
}

TEST( tpar_test, preserves_random_clifford_t_circuits )
{
  std::mt19937_64 rng( 11u );
  for ( uint32_t trial = 0u; trial < 30u; ++trial )
  {
    qcircuit circuit( 4u );
    for ( uint32_t g = 0u; g < 60u; ++g )
    {
      const uint32_t q = rng() % 4u;
      switch ( rng() % 8u )
      {
      case 0u: circuit.t( q ); break;
      case 1u: circuit.tdg( q ); break;
      case 2u: circuit.s( q ); break;
      case 3u: circuit.h( q ); break;
      case 4u: circuit.x( q ); break;
      case 5u: circuit.cx( q, ( q + 1u ) % 4u ); break;
      case 6u: circuit.swap_( q, ( q + 1u ) % 4u ); break;
      default: circuit.cz( q, ( q + 2u ) % 4u ); break;
      }
    }
    const auto fold_only = phasepoly::tpar( circuit, { /*resynthesize=*/false } );
    const auto full = phasepoly::tpar( circuit );
    ASSERT_TRUE( circuits_equivalent( fold_only, circuit ) ) << "trial=" << trial;
    ASSERT_TRUE( circuits_equivalent( full, circuit ) ) << "trial=" << trial;
    const auto t_before = compute_statistics( circuit ).t_count;
    const auto t_fold = compute_statistics( fold_only ).t_count;
    const auto t_full = compute_statistics( full ).t_count;
    EXPECT_LE( t_fold, t_before );
    EXPECT_LE( t_full, t_fold ); /* resynthesis must never cost T gates */
  }
}

TEST( tpar_test, fuzz_crosses_the_64_label_boundary )
{
  /* h-heavy circuits allocate hundreds of labels; pins the unbounded
   * tracking on inputs where the epoch hack used to reset state */
  std::mt19937_64 rng( 29u );
  for ( uint32_t trial = 0u; trial < 10u; ++trial )
  {
    qcircuit circuit( 4u );
    for ( uint32_t g = 0u; g < 300u; ++g )
    {
      const uint32_t q = rng() % 4u;
      switch ( rng() % 6u )
      {
      case 0u:
      case 1u: circuit.h( q ); break;
      case 2u: circuit.t( q ); break;
      case 3u: circuit.tdg( q ); break;
      case 4u: circuit.cx( q, ( q + 1u ) % 4u ); break;
      default: circuit.rz( q, 0.1 * static_cast<double>( g % 7u ) ); break;
      }
    }
    const auto optimized = phasepoly::tpar( circuit );
    ASSERT_TRUE( circuits_equivalent( optimized, circuit ) ) << "trial=" << trial;
    EXPECT_LE( compute_statistics( optimized ).t_count,
               compute_statistics( circuit ).t_count );
  }
}

TEST( tpar_test, improves_mapped_benchmarks_end_to_end )
{
  const auto reversible = transformation_based_synthesis( hwb_permutation( 4u ) );
  const auto mapped = map_to_clifford_t( reversible );
  const auto fold_only = phasepoly::tpar( mapped.circuit, { /*resynthesize=*/false } );
  const auto full = phasepoly::tpar( mapped.circuit );
  EXPECT_TRUE( circuits_equivalent( full, mapped.circuit ) );
  const auto stats_fold = compute_statistics( fold_only );
  const auto stats_full = compute_statistics( full );
  EXPECT_LE( stats_full.t_count, stats_fold.t_count );
  EXPECT_LE( stats_full.cnot_count, stats_fold.cnot_count );
  EXPECT_LT( stats_full.t_count, compute_statistics( mapped.circuit ).t_count );
}

/* ---------------------------------------------------------------- */
/* affine linear synthesis (unbounded width, X handling)            */
/* ---------------------------------------------------------------- */

TEST( affine_synthesis_test, linear_map_accepts_x_gates )
{
  qcircuit circuit( 2u );
  circuit.x( 0u );
  circuit.cx( 0u, 1u );
  /* previously threw std::invalid_argument on the X gate */
  const auto linear = linear_map_of_circuit( circuit );
  EXPECT_EQ( linear, ( linear_matrix{ 1u, 3u } ) );

  const auto map = affine_map_of_circuit( circuit );
  EXPECT_EQ( map.linear, linear );
  EXPECT_TRUE( map.constants.test( 0u ) );
  EXPECT_TRUE( map.constants.test( 1u ) ); /* X propagates through the CNOT */
}

TEST( affine_synthesis_test, resynthesizes_regions_with_x_gates )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.x( 1u );
  circuit.cx( 0u, 1u );
  circuit.cx( 1u, 2u );
  circuit.cx( 1u, 2u );
  circuit.x( 1u );
  circuit.h( 2u );
  const auto resynthesized = resynthesize_linear_regions( circuit );
  EXPECT_TRUE( circuits_equivalent( resynthesized, circuit ) );
  EXPECT_LT( resynthesized.num_gates(), circuit.num_gates() );
}

TEST( affine_synthesis_test, pmh_handles_more_than_64_qubits )
{
  /* the former linear_matrix was a vector of u64 masks, capping PMH at
   * 64 qubits; bitvec rows lift that */
  constexpr uint32_t n = 80u;
  std::mt19937_64 rng( 41u );
  qcircuit circuit( n );
  for ( uint32_t g = 0u; g < 400u; ++g )
  {
    const uint32_t c = static_cast<uint32_t>( rng() % n );
    uint32_t t = static_cast<uint32_t>( rng() % n );
    if ( t == c )
    {
      t = ( t + 1u ) % n;
    }
    circuit.cx( c, t );
  }
  const auto matrix = linear_map_of_circuit( circuit );
  ASSERT_TRUE( is_invertible( matrix ) );
  const auto resynthesized = pmh_linear_synthesis( matrix );
  EXPECT_EQ( linear_map_of_circuit( resynthesized ), matrix );
}

} // namespace
} // namespace qda
