#include "mapping/clifford_t.hpp"
#include "mapping/coupling_map.hpp"
#include "mapping/router.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( clifford_t_test, toffoli_7t_is_exact )
{
  qcircuit decomposed( 3u );
  append_toffoli_clifford_t( decomposed, 0u, 1u, 2u );
  qcircuit reference( 3u );
  reference.ccx( 0u, 1u, 2u );
  EXPECT_TRUE( circuits_equivalent( decomposed, reference ) );
  EXPECT_EQ( compute_statistics( decomposed ).t_count, 7u );
}

TEST( clifford_t_test, rccx_matches_toffoli_on_computational_values )
{
  /* RCCX equals CCX up to relative phases: the permutation part agrees */
  qcircuit rccx( 3u );
  append_relative_phase_toffoli( rccx, 0u, 1u, 2u );
  EXPECT_EQ( compute_statistics( rccx ).t_count, 4u );
  const auto matrix = build_unitary( rccx );
  for ( uint64_t column = 0u; column < 8u; ++column )
  {
    const uint64_t expected =
        ( ( column & 0b011u ) == 0b011u ) ? column ^ 0b100u : column;
    EXPECT_NEAR( std::abs( matrix[column][expected] ), 1.0, 1e-9 ) << column;
  }
}

TEST( clifford_t_test, rccx_is_involution )
{
  qcircuit twice( 3u );
  append_relative_phase_toffoli( twice, 0u, 1u, 2u );
  append_relative_phase_toffoli( twice, 0u, 1u, 2u, /*adjoint=*/true );
  EXPECT_TRUE( circuits_equivalent( twice, qcircuit( 3u ) ) );
}

TEST( clifford_t_test, simple_gates_map_directly )
{
  rev_circuit circuit( 2u );
  circuit.add_not( 0u );
  circuit.add_cnot( 0u, 1u );
  const auto mapped = map_to_clifford_t( circuit );
  EXPECT_EQ( mapped.num_helper_qubits, 0u );
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               circuit.to_permutation().images() ) );
}

TEST( clifford_t_test, negative_controls_are_conjugated )
{
  rev_circuit circuit( 2u );
  circuit.add_gate( rev_gate::mct( {}, { 0u }, 1u ) ); /* CNOT with negative control */
  const auto mapped = map_to_clifford_t( circuit );
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               circuit.to_permutation().images() ) );
}

TEST( clifford_t_test, toffoli_circuit_exact )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  const auto mapped = map_to_clifford_t( circuit );
  EXPECT_EQ( mapped.num_helper_qubits, 0u );
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               circuit.to_permutation().images() ) );
}

class mct_mapping_test : public ::testing::TestWithParam<std::tuple<uint32_t, bool>>
{
};

TEST_P( mct_mapping_test, large_mct_gates_with_helpers )
{
  const auto [num_controls, use_relative_phase] = GetParam();
  rev_circuit circuit( num_controls + 1u );
  std::vector<uint32_t> controls( num_controls );
  for ( uint32_t i = 0u; i < num_controls; ++i )
  {
    controls[i] = i;
  }
  circuit.add_gate( rev_gate::mct( controls, {}, num_controls ) );

  clifford_t_options options;
  options.use_relative_phase = use_relative_phase;
  const auto mapped = map_to_clifford_t( circuit, options );
  EXPECT_EQ( mapped.num_helper_qubits, num_controls > 2u ? num_controls - 2u : 0u );
  EXPECT_TRUE( circuit_implements_permutation_with_helpers(
      mapped.circuit, circuit.num_lines(), circuit.to_permutation().images(),
      /*up_to_phase=*/false ) )
      << "k=" << num_controls << " rp=" << use_relative_phase;
  EXPECT_EQ( compute_statistics( mapped.circuit ).t_count,
             mct_t_count( num_controls, use_relative_phase ) );
}

INSTANTIATE_TEST_SUITE_P(
    arities, mct_mapping_test,
    ::testing::Combine( ::testing::Values( 3u, 4u, 5u, 6u ), ::testing::Bool() ) );

TEST( clifford_t_test, relative_phase_reduces_t_count )
{
  EXPECT_LT( mct_t_count( 5u, true ), mct_t_count( 5u, false ) );
  EXPECT_EQ( mct_t_count( 2u, true ), 7u );
  EXPECT_EQ( mct_t_count( 1u, true ), 0u );
}

TEST( clifford_t_test, synthesized_circuit_end_to_end )
{
  const auto pi = hwb_permutation( 4u );
  const auto reversible = transformation_based_synthesis( pi );
  const auto mapped = map_to_clifford_t( reversible );
  EXPECT_TRUE( circuit_implements_permutation_with_helpers( mapped.circuit, 4u, pi.images() ) );
}

TEST( clifford_t_test, keep_toffoli_option )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  clifford_t_options options;
  options.keep_toffoli = true;
  const auto mapped = map_to_clifford_t( circuit, options );
  ASSERT_EQ( mapped.circuit.num_gates(), 1u );
  EXPECT_EQ( mapped.circuit.gate( 0u ).kind, gate_kind::mcx );
}

TEST( coupling_map_test, device_definitions )
{
  const auto qx4 = coupling_map::ibm_qx4();
  EXPECT_EQ( qx4.num_qubits(), 5u );
  EXPECT_TRUE( qx4.has_directed_edge( 1u, 0u ) );
  EXPECT_FALSE( qx4.has_directed_edge( 0u, 1u ) );
  EXPECT_TRUE( qx4.are_adjacent( 0u, 1u ) );
  EXPECT_FALSE( qx4.are_adjacent( 0u, 3u ) );

  const auto qx5 = coupling_map::ibm_qx5();
  EXPECT_EQ( qx5.num_qubits(), 16u );

  EXPECT_THROW( coupling_map( 2u, { { 0u, 2u } } ), std::invalid_argument );
}

TEST( coupling_map_test, shortest_paths )
{
  const auto line = coupling_map::linear( 5u );
  const auto path = line.shortest_path( 0u, 4u );
  EXPECT_EQ( path, ( std::vector<uint32_t>{ 0u, 1u, 2u, 3u, 4u } ) );
  EXPECT_EQ( line.distance( 0u, 4u ), 4u );
  EXPECT_EQ( line.distance( 2u, 2u ), 0u );

  const auto ring = coupling_map::ring( 6u );
  EXPECT_EQ( ring.distance( 0u, 5u ), 1u );
  EXPECT_EQ( ring.distance( 0u, 3u ), 3u );
}

TEST( router_test, adjacent_cnot_passes_through )
{
  const auto device = coupling_map::linear( 3u );
  qcircuit circuit( 3u );
  circuit.cx( 0u, 1u );
  const auto routed = route_circuit( circuit, device );
  EXPECT_EQ( routed.added_swaps, 0u );
  EXPECT_TRUE( circuits_equivalent( routed.circuit, circuit ) );
}

TEST( router_test, direction_fix_preserves_semantics )
{
  const auto qx4 = coupling_map::ibm_qx4();
  qcircuit circuit( 5u );
  circuit.cx( 0u, 1u ); /* only 1->0 native */
  const auto routed = route_circuit( circuit, qx4 );
  EXPECT_EQ( routed.added_direction_fixes, 1u );
  EXPECT_TRUE( circuits_equivalent( routed.circuit, circuit ) );
}

TEST( router_test, distant_cnot_inserts_swaps )
{
  const auto device = coupling_map::linear( 4u );
  qcircuit circuit( 4u );
  circuit.cx( 0u, 3u );
  const auto routed = route_circuit( circuit, device );
  EXPECT_GT( routed.added_swaps, 0u );
  /* functional check: track the layout permutation */
  const auto& layout = routed.final_layout;
  for ( uint64_t input = 0u; input < 16u; ++input )
  {
    qcircuit prep( 4u );
    for ( uint32_t q = 0u; q < 4u; ++q )
    {
      if ( ( input >> q ) & 1u )
      {
        prep.x( q );
      }
    }
    qcircuit logical_all( 4u );
    logical_all.append( prep );
    logical_all.append( circuit );
    statevector_simulator sim_logical( 4u );
    sim_logical.run( logical_all );

    qcircuit physical_all( 4u );
    physical_all.append( prep );
    physical_all.append( routed.circuit );
    statevector_simulator sim_physical( 4u );
    sim_physical.run( physical_all );

    /* compare: logical qubit q lives at layout[q] after routing */
    uint64_t logical_out = 0u, physical_out = 0u;
    for ( uint64_t basis = 0u; basis < 16u; ++basis )
    {
      if ( sim_logical.probability_of( basis ) > 0.5 )
      {
        logical_out = basis;
      }
      if ( sim_physical.probability_of( basis ) > 0.5 )
      {
        physical_out = basis;
      }
    }
    for ( uint32_t q = 0u; q < 4u; ++q )
    {
      ASSERT_EQ( ( logical_out >> q ) & 1u, ( physical_out >> layout[q] ) & 1u )
          << "input=" << input << " q=" << q;
    }
  }
}

TEST( router_test, measurements_follow_layout )
{
  const auto device = coupling_map::linear( 4u );
  qcircuit circuit( 4u );
  circuit.x( 3u );
  circuit.cx( 0u, 3u ); /* forces swaps */
  circuit.measure_all();
  const auto routed = route_circuit( circuit, device );
  /* outcome bit order = measure order = logical order; simulate */
  const auto counts = sample_counts( routed.circuit, 128u, 3u );
  ASSERT_EQ( counts.size(), 1u );
  /* logical state: q3=1, cx(0,3) does nothing (q0=0) -> outcome 1000 */
  EXPECT_EQ( counts.begin()->first, 0b1000u );
}

TEST( router_test, cz_and_swap_inputs )
{
  const auto device = coupling_map::linear( 3u );
  qcircuit circuit( 3u );
  circuit.cz( 0u, 2u );
  circuit.swap_( 0u, 1u );
  const auto routed = route_circuit( circuit, device );
  /* validate up to layout: compose with layout-inverting permutation */
  EXPECT_GT( routed.circuit.num_gates(), 2u );
}

TEST( router_test, greedy_logical_swap_takes_effect )
{
  /* regression: the logical SWAP must move the value, not cancel
   * against its own layout relabeling */
  const auto device = coupling_map::linear( 2u );
  qcircuit circuit( 2u );
  circuit.x( 0u );
  circuit.swap_( 0u, 1u );
  circuit.measure_all();
  const auto routed = route_circuit( circuit, device );
  EXPECT_EQ( routed.added_swaps, 0u ) << "a program swap is not a routing-inserted one";
  const auto counts = sample_counts( routed.circuit, 16u, 3u );
  ASSERT_EQ( counts.size(), 1u );
  EXPECT_EQ( counts.begin()->first, 0b10u ); /* logical q1 carries the 1 */
}

TEST( router_test, rejects_oversized_circuits_and_mcx )
{
  const auto device = coupling_map::linear( 2u );
  qcircuit too_big( 3u );
  EXPECT_THROW( route_circuit( too_big, device ), std::invalid_argument );

  qcircuit with_mcx( 4u );
  with_mcx.mcx( { 0u, 1u, 2u }, 3u );
  EXPECT_THROW( route_circuit( with_mcx, coupling_map::linear( 4u ) ), std::invalid_argument );

  router_options sabre;
  EXPECT_THROW( route_circuit( too_big, device, sabre ), std::invalid_argument );
  EXPECT_THROW( route_circuit( with_mcx, coupling_map::linear( 4u ), sabre ),
                std::invalid_argument );
}

TEST( router_test, merged_direction_fix_hadamards )
{
  /* two consecutive reversed CNOTs: the inner H pairs cancel at
   * emission, leaving 4 Hadamards instead of 8 */
  const auto qx4 = coupling_map::ibm_qx4();
  qcircuit circuit( 5u );
  circuit.cx( 0u, 1u ); /* only 1->0 is native */
  circuit.cx( 0u, 1u );
  const auto routed = route_circuit( circuit, qx4 );
  EXPECT_EQ( routed.added_direction_fixes, 2u );
  EXPECT_EQ( compute_statistics( routed.circuit ).h_count, 4u );
  EXPECT_TRUE( circuits_equivalent( routed.circuit, circuit ) );
}

TEST( router_test, native_swap_edge_is_used )
{
  const auto device = coupling_map::linear( 3u ).with_native_swaps();
  EXPECT_TRUE( device.has_swap_edge( 0u, 1u ) );
  EXPECT_FALSE( coupling_map::linear( 3u ).has_swap_edge( 0u, 1u ) );
  EXPECT_THROW( coupling_map::linear( 3u ).add_swap_edge( 0u, 2u ), std::invalid_argument );

  qcircuit circuit( 3u );
  circuit.cx( 0u, 2u ); /* forces one routing SWAP */
  const auto routed = route_circuit( circuit, device );
  EXPECT_EQ( routed.added_swaps, 1u );
  uint64_t native_swaps = 0u;
  for ( const auto& gate : routed.circuit.gates() )
  {
    native_swaps += gate.kind == gate_kind::swap ? 1u : 0u;
  }
  EXPECT_EQ( native_swaps, 1u ) << "native edge should emit one swap gate, not 3 CNOTs";

  router_options no_native;
  no_native.kind = router_kind::greedy;
  no_native.use_native_swap = false;
  const auto expanded = route_circuit( circuit, device, no_native );
  for ( const auto& gate : expanded.circuit.gates() )
  {
    EXPECT_NE( gate.kind, gate_kind::swap );
  }
}

/* ---------------------------------------------------------------- */
/* SABRE router                                                     */
/* ---------------------------------------------------------------- */

/*! Functional routing check honoring both layouts: for every basis
 *  input, logical qubit q enters on initial_layout[q] and must exit on
 *  final_layout[q] with the value the logical circuit computes.
 */
void expect_routing_equivalent( const qcircuit& logical, const routing_result& routed,
                                uint32_t num_logical )
{
  const uint32_t physical_width = routed.circuit.num_qubits();
  for ( uint64_t input = 0u; input < ( uint64_t{ 1 } << num_logical ); ++input )
  {
    qcircuit logical_program( num_logical );
    qcircuit physical_program( physical_width );
    for ( uint32_t q = 0u; q < num_logical; ++q )
    {
      if ( ( input >> q ) & 1u )
      {
        logical_program.x( q );
        physical_program.x( routed.initial_layout[q] );
      }
    }
    logical_program.append( logical );
    physical_program.append( routed.circuit );

    statevector_simulator sim_logical( num_logical );
    sim_logical.run( logical_program );
    statevector_simulator sim_physical( physical_width );
    sim_physical.run( physical_program );

    uint64_t logical_out = 0u;
    for ( uint64_t basis = 0u; basis < ( uint64_t{ 1 } << num_logical ); ++basis )
    {
      if ( sim_logical.probability_of( basis ) > 0.5 )
      {
        logical_out = basis;
      }
    }
    uint64_t physical_out = 0u;
    for ( uint64_t basis = 0u; basis < ( uint64_t{ 1 } << physical_width ); ++basis )
    {
      if ( sim_physical.probability_of( basis ) > 0.5 )
      {
        physical_out = basis;
      }
    }
    for ( uint32_t q = 0u; q < num_logical; ++q )
    {
      ASSERT_EQ( ( logical_out >> q ) & 1u,
                 ( physical_out >> routed.final_layout[q] ) & 1u )
          << "input=" << input << " q=" << q;
    }
  }
}

TEST( sabre_test, preserves_semantics_on_directed_device )
{
  const auto qx4 = coupling_map::ibm_qx4();
  qcircuit plain( 5u );
  plain.x( 0u );
  plain.cx( 0u, 4u );
  plain.cx( 1u, 3u );
  plain.cx( 0u, 2u );
  plain.cz( 3u, 4u );
  plain.swap_( 0u, 1u );
  plain.cx( 1u, 4u );
  router_options options;
  const auto routed = route_circuit( plain, qx4, options );
  expect_routing_equivalent( plain, routed, 5u );
}

TEST( sabre_test, logical_swaps_are_absorbed_into_the_layout )
{
  const auto device = coupling_map::linear( 4u );
  qcircuit circuit( 4u );
  circuit.swap_( 0u, 3u );
  router_options options;
  const auto routed = route_circuit( circuit, device, options );
  /* a logical SWAP costs no gates: it is a relabeling */
  EXPECT_EQ( routed.added_swaps, 0u );
  EXPECT_EQ( routed.circuit.num_gates(), 0u );
  expect_routing_equivalent( circuit, routed, 4u );
}

TEST( sabre_test, measurement_order_is_preserved )
{
  const auto device = coupling_map::linear( 4u );
  qcircuit circuit( 4u );
  circuit.x( 3u );
  circuit.cx( 0u, 3u ); /* forces movement */
  circuit.measure_all();
  router_options options;
  const auto routed = route_circuit( circuit, device, options );
  const auto counts = sample_counts( routed.circuit, 128u, 3u );
  ASSERT_EQ( counts.size(), 1u );
  /* outcome bit i = i-th logical measurement: q3=1 -> 0b1000 */
  EXPECT_EQ( counts.begin()->first, 0b1000u );
}

TEST( sabre_test, beats_or_matches_greedy_on_routed_workload )
{
  /* hwb4 mapped to Clifford+T, routed onto a 16-qubit line: the
   * lookahead router must not insert more SWAPs than the baseline */
  const auto reversible = transformation_based_synthesis( hwb_permutation( 4u ) );
  const auto mapped = map_to_clifford_t( reversible );
  const auto device = coupling_map::linear( 16u );
  const auto greedy = route_circuit( mapped.circuit, device );
  router_options options;
  const auto sabre = route_circuit( mapped.circuit, device, options );
  EXPECT_LE( sabre.added_swaps, greedy.added_swaps );
  EXPECT_GT( greedy.added_swaps, 0u );
}

TEST( sabre_test, explicit_initial_layout_is_respected )
{
  const auto device = coupling_map::linear( 3u );
  qcircuit circuit( 3u );
  circuit.cx( 0u, 2u );
  router_options options;
  options.initial_layout = std::vector<uint32_t>{ 0u, 2u, 1u }; /* 0 and 2 adjacent */
  const auto routed = route_circuit( circuit, device, options );
  EXPECT_EQ( routed.initial_layout, ( std::vector<uint32_t>{ 0u, 2u, 1u } ) );
  EXPECT_EQ( routed.added_swaps, 0u );
  expect_routing_equivalent( circuit, routed, 3u );

  router_options bad;
  bad.initial_layout = std::vector<uint32_t>{ 0u, 0u, 1u };
  EXPECT_THROW( route_circuit( circuit, device, bad ), std::invalid_argument );
}

TEST( sabre_test, parse_helpers )
{
  EXPECT_EQ( parse_router_kind( "sabre" ), router_kind::sabre );
  EXPECT_EQ( parse_router_kind( "greedy" ), router_kind::greedy );
  EXPECT_EQ( parse_router_kind( "qiskit" ), std::nullopt );
  EXPECT_STREQ( router_kind_name( router_kind::sabre ), "sabre" );
  EXPECT_EQ( parse_mct_strategy( "dirty" ), mct_strategy::dirty );
  EXPECT_EQ( parse_mct_strategy( "auto" ), mct_strategy::automatic );
  EXPECT_EQ( parse_mct_strategy( "bogus" ), std::nullopt );
}

TEST( coupling_map_test, all_distances_matches_pairwise )
{
  const auto qx5 = coupling_map::ibm_qx5();
  const auto matrix = qx5.all_distances();
  ASSERT_EQ( matrix.size(), 16u );
  for ( uint32_t a = 0u; a < 16u; a += 3u )
  {
    for ( uint32_t b = 0u; b < 16u; b += 5u )
    {
      EXPECT_EQ( matrix[a][b], qx5.distance( a, b ) ) << a << "," << b;
    }
  }
}

} // namespace
} // namespace qda
