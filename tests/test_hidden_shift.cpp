#include "core/hidden_shift.hpp"
#include "kernel/spectral.hpp"
#include "simulator/statevector.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( bent_function_test, inner_product_layouts )
{
  const auto plain = mm_bent_function::inner_product( 2u, /*interleaved=*/false );
  EXPECT_EQ( plain.to_truth_table(), inner_product_function( 2u ) );
  const auto inter = mm_bent_function::inner_product( 2u, /*interleaved=*/true );
  EXPECT_EQ( inter.to_truth_table(), inner_product_function( 2u, true ) );
}

TEST( bent_function_test, mm_functions_are_bent )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    const auto f = mm_bent_function::random( 3u, seed );
    EXPECT_TRUE( is_bent( f.to_truth_table() ) ) << "seed=" << seed;
  }
}

TEST( bent_function_test, closed_form_dual_matches_spectral_dual )
{
  for ( uint64_t seed = 0u; seed < 8u; ++seed )
  {
    const auto f = mm_bent_function::random( 3u, seed + 50u );
    const auto spectral = dual_bent_function( f.to_truth_table() );
    ASSERT_EQ( f.dual_truth_table(), spectral ) << "seed=" << seed;
  }
}

TEST( bent_function_test, paper_fig7_instance )
{
  const auto f = mm_bent_function::paper_fig7();
  EXPECT_EQ( f.num_vars(), 6u );
  EXPECT_TRUE( is_bent( f.to_truth_table() ) );
  /* x on even qubits, y on odd qubits */
  EXPECT_EQ( f.x_var( 0u ), 0u );
  EXPECT_EQ( f.y_var( 0u ), 1u );
  EXPECT_EQ( f.x_var( 2u ), 4u );
}

TEST( bent_function_test, arity_mismatch_throws )
{
  EXPECT_THROW( mm_bent_function( permutation( 3u ), truth_table( 2u ) ),
                std::invalid_argument );
}

TEST( hidden_shift_test, paper_fig4_instance_shift_is_1 )
{
  /* f(x) = x1 x2 xor x3 x4, g(x) = f(x + 1): the paper's Sec. VII demo */
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto circuit = hidden_shift_circuit( { f, 1u } );
  EXPECT_EQ( solve_hidden_shift( circuit ), 1u );
}

TEST( hidden_shift_test, generic_circuit_recovers_every_shift )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  for ( uint64_t shift = 0u; shift < 16u; ++shift )
  {
    const auto circuit = hidden_shift_circuit( { f, shift } );
    ASSERT_EQ( solve_hidden_shift( circuit ), shift ) << "shift=" << shift;
  }
}

TEST( hidden_shift_test, recovery_is_deterministic )
{
  const auto f = inner_product_function( 2u );
  const auto circuit = hidden_shift_circuit( { f, 9u } );
  statevector_simulator simulator( circuit.num_qubits() );
  qcircuit unitary_only( circuit.num_qubits() );
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind != gate_kind::measure )
    {
      unitary_only.add_gate( gate );
    }
  }
  simulator.run( unitary_only );
  EXPECT_NEAR( simulator.probability_of( 9u ), 1.0, 1e-9 );
}

TEST( hidden_shift_test, rejects_non_bent_functions )
{
  EXPECT_THROW( hidden_shift_circuit( { truth_table::projection( 4u, 0u ), 1u } ),
                std::invalid_argument );
  const auto f = inner_product_function( 2u );
  EXPECT_THROW( hidden_shift_circuit( { f, 16u } ), std::invalid_argument );
}

TEST( hidden_shift_test, random_bent_instances )
{
  for ( uint64_t seed = 0u; seed < 6u; ++seed )
  {
    const auto mm = mm_bent_function::random( 2u, seed + 7u );
    const auto f = mm.to_truth_table();
    const uint64_t shift = ( seed * 5u + 3u ) % 16u;
    const auto circuit = hidden_shift_circuit( { f, shift } );
    ASSERT_EQ( solve_hidden_shift( circuit ), shift ) << "seed=" << seed;
  }
}

TEST( hidden_shift_mm_test, paper_fig7_instance_shift_is_5 )
{
  const auto f = mm_bent_function::paper_fig7();
  const auto circuit = hidden_shift_circuit_mm( f, 5u );
  EXPECT_EQ( solve_hidden_shift( circuit ), 5u );
}

TEST( hidden_shift_mm_test, every_shift_of_fig7_instance )
{
  const auto f = mm_bent_function::paper_fig7();
  for ( uint64_t shift = 0u; shift < 64u; shift += 7u )
  {
    const auto circuit = hidden_shift_circuit_mm( f, shift );
    ASSERT_EQ( solve_hidden_shift( circuit ), shift ) << "shift=" << shift;
  }
}

TEST( hidden_shift_mm_test, synthesis_method_combinations )
{
  const auto f = mm_bent_function::paper_fig7();
  for ( const auto pi_synth : { permutation_synthesis::tbs, permutation_synthesis::dbs } )
  {
    for ( const auto dual_synth : { permutation_synthesis::tbs, permutation_synthesis::dbs,
                                    permutation_synthesis::tbs_bidirectional } )
    {
      const auto circuit = hidden_shift_circuit_mm( f, 42u, pi_synth, dual_synth );
      ASSERT_EQ( solve_hidden_shift( circuit ), 42u );
    }
  }
}

TEST( hidden_shift_mm_test, nontrivial_h_part )
{
  for ( uint64_t seed = 0u; seed < 5u; ++seed )
  {
    const auto f = mm_bent_function::random( 2u, seed + 90u );
    const uint64_t shift = ( 3u * seed + 1u ) % 16u;
    const auto circuit = hidden_shift_circuit_mm( f, shift );
    ASSERT_EQ( solve_hidden_shift( circuit ), shift ) << "seed=" << seed;
  }
}

TEST( hidden_shift_mm_test, mm_and_generic_circuits_agree )
{
  const auto f = mm_bent_function::random( 2u, 123u );
  const auto generic = hidden_shift_circuit( { f.to_truth_table(), 6u } );
  const auto structured = hidden_shift_circuit_mm( f, 6u );
  EXPECT_EQ( solve_hidden_shift( generic ), solve_hidden_shift( structured ) );
}

TEST( classical_baseline_test, brute_force_finds_shift )
{
  const auto f = inner_product_function( 2u );
  const auto g = shift_function( f, 11u );
  const auto [shift, queries] = classical_hidden_shift( f, g );
  EXPECT_EQ( shift, 11u );
  EXPECT_GT( queries, 2u ); /* quantum needs exactly 2 */
}

TEST( classical_baseline_test, sampling_variant_finds_shift )
{
  const auto f = inner_product_function( 3u );
  const auto g = shift_function( f, 33u );
  const auto [shift, queries] = classical_hidden_shift_sampling( f, g );
  EXPECT_EQ( shift, 33u );
  EXPECT_GT( queries, 2u );
}

TEST( classical_baseline_test, query_counts_grow_with_n )
{
  uint64_t previous = 0u;
  for ( uint32_t half : { 1u, 2u, 3u } )
  {
    const auto f = inner_product_function( half );
    const auto g = shift_function( f, f.num_bits() - 1u );
    const auto [shift, queries] = classical_hidden_shift( f, g );
    EXPECT_EQ( shift, f.num_bits() - 1u );
    EXPECT_GT( queries, previous );
    previous = queries;
  }
}

TEST( classical_baseline_test, rejects_shiftless_pairs )
{
  const auto f = inner_product_function( 2u );
  auto g = shift_function( f, 3u );
  g.flip_bit( 0u ); /* no longer a shift of f */
  EXPECT_THROW( classical_hidden_shift( f, g ), std::invalid_argument );
}

} // namespace
} // namespace qda
