/*! Statevector cross-checks of every MCT lowering strategy against the
 *  naive multi-controlled X, cost-table pinning against emitted
 *  circuits, and ancilla-manager bookkeeping.
 */
#include "mapping/ancilla.hpp"
#include "mapping/clifford_t.hpp"
#include "mapping/mct_lowering.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qda
{
namespace
{

/* ---------------------------------------------------------------- */
/* ancilla manager                                                  */
/* ---------------------------------------------------------------- */

TEST( ancilla_manager_test, clean_helpers_grow_and_are_reused )
{
  ancilla_manager manager( 4u );
  EXPECT_EQ( manager.num_wires(), 4u );
  const auto first = manager.acquire_clean( 2u );
  EXPECT_EQ( first, ( std::vector<uint32_t>{ 4u, 5u } ) );
  EXPECT_EQ( manager.num_wires(), 6u );
  manager.release_clean( first );
  /* a later request reuses the released helpers instead of growing */
  const auto second = manager.acquire_clean( 2u );
  EXPECT_EQ( second, first );
  EXPECT_EQ( manager.num_wires(), 6u );
  manager.release_clean( second );
  /* partial reuse plus one fresh helper */
  const auto third = manager.acquire_clean( 3u );
  EXPECT_EQ( manager.num_wires(), 7u );
  EXPECT_EQ( third.size(), 3u );
  EXPECT_EQ( manager.num_helpers(), 3u );
}

TEST( ancilla_manager_test, qubit_budget_caps_growth )
{
  ancilla_manager manager( 4u, 5u );
  EXPECT_EQ( manager.clean_capacity(), 1u );
  EXPECT_TRUE( manager.can_acquire_clean( 1u ) );
  EXPECT_FALSE( manager.can_acquire_clean( 2u ) );
  EXPECT_THROW( manager.acquire_clean( 2u ), std::invalid_argument );
  const auto helpers = manager.acquire_clean( 1u );
  EXPECT_EQ( manager.clean_capacity(), 0u );
  manager.release_clean( helpers );
  EXPECT_EQ( manager.clean_capacity(), 1u );

  EXPECT_THROW( ancilla_manager( 4u, 3u ), std::invalid_argument );
}

TEST( ancilla_manager_test, dirty_borrowing_avoids_busy_and_held_wires )
{
  ancilla_manager manager( 5u );
  const auto held = manager.acquire_clean( 1u ); /* wire 5 */
  EXPECT_EQ( manager.num_idle( { 0u, 2u } ), 3u );
  const auto borrowed = manager.borrow_dirty( 3u, { 0u, 2u } );
  EXPECT_EQ( borrowed, ( std::vector<uint32_t>{ 1u, 3u, 4u } ) );
  EXPECT_THROW( manager.borrow_dirty( 4u, { 0u, 2u } ), std::invalid_argument );
  manager.release_clean( held );
  /* released clean helpers become borrowable again */
  EXPECT_EQ( manager.num_idle( { 0u, 2u } ), 4u );
  EXPECT_THROW( manager.release_clean( { 5u } ), std::invalid_argument );
}

/* ---------------------------------------------------------------- */
/* strategy equivalence                                             */
/* ---------------------------------------------------------------- */

/*! Checks `mapped` (data lines + optional |0> helpers) against the
 *  reference MCT `source`: every data-basis input, plus one all-lines
 *  superposition input that exposes stray relative phases.
 */
void expect_mct_equivalent( const qcircuit& mapped, const rev_circuit& source )
{
  const uint32_t data = source.num_lines();
  const uint32_t width = mapped.num_qubits();
  ASSERT_LE( width, 14u );

  /* permutation part: basis inputs with helpers in |0> */
  for ( uint64_t input = 0u; input < ( uint64_t{ 1 } << data ); ++input )
  {
    qcircuit program( width );
    for ( uint32_t line = 0u; line < data; ++line )
    {
      if ( ( input >> line ) & 1u )
      {
        program.x( line );
      }
    }
    program.append( mapped );
    statevector_simulator sim( width );
    sim.run( program );
    const uint64_t expected = source.simulate( input );
    EXPECT_NEAR( sim.probability_of( expected ), 1.0, 1e-9 ) << "input=" << input;
  }

  /* phase part: a full data superposition must match amplitude for
   * amplitude (a residual diagonal phase would break this) */
  qcircuit mapped_program( width );
  qcircuit reference_program( width );
  for ( uint32_t line = 0u; line < data; ++line )
  {
    mapped_program.h( line );
    reference_program.h( line );
  }
  mapped_program.append( mapped );
  for ( const auto& gate : source.gates() )
  {
    std::vector<uint32_t> positives;
    std::vector<uint32_t> negatives;
    for ( uint32_t line = 0u; line < data; ++line )
    {
      if ( ( gate.controls >> line ) & 1u )
      {
        ( ( gate.polarity >> line ) & 1u ? positives : negatives ).push_back( line );
      }
    }
    for ( const auto line : negatives )
    {
      reference_program.x( line );
    }
    std::vector<uint32_t> all_controls = positives;
    all_controls.insert( all_controls.end(), negatives.begin(), negatives.end() );
    if ( all_controls.empty() )
    {
      reference_program.x( gate.target );
    }
    else
    {
      reference_program.mcx( all_controls, gate.target );
    }
    for ( const auto line : negatives )
    {
      reference_program.x( line );
    }
  }
  statevector_simulator sim_mapped( width );
  sim_mapped.run( mapped_program );
  statevector_simulator sim_reference( width );
  sim_reference.run( reference_program );
  const auto& mapped_state = sim_mapped.state();
  const auto& reference_state = sim_reference.state();
  for ( uint64_t basis = 0u; basis < ( uint64_t{ 1 } << width ); ++basis )
  {
    ASSERT_NEAR( std::abs( mapped_state[basis] - reference_state[basis] ), 0.0, 1e-9 )
        << "basis=" << basis;
  }
}

struct strategy_case
{
  mct_strategy strategy;
  bool use_relative_phase;
  uint32_t spare_lines; /* idle data lines so the strategy is feasible */
};

class mct_strategy_test
    : public ::testing::TestWithParam<std::tuple<uint32_t, strategy_case>>
{
};

TEST_P( mct_strategy_test, equivalent_to_naive_mcx_with_mixed_polarity )
{
  const auto [num_controls, test_case] = GetParam();
  const uint32_t spare =
      test_case.strategy == mct_strategy::dirty && num_controls > 2u
          ? std::max( test_case.spare_lines, num_controls - 2u )
          : test_case.spare_lines;
  const uint32_t num_lines = num_controls + 1u + spare;

  /* mixed polarity: every other control is negative */
  std::vector<uint32_t> positives;
  std::vector<uint32_t> negatives;
  for ( uint32_t i = 0u; i < num_controls; ++i )
  {
    ( i % 2u == 0u ? positives : negatives ).push_back( i );
  }
  rev_circuit source( num_lines );
  source.add_gate( rev_gate::mct( positives, negatives, num_controls ) );

  clifford_t_options options;
  options.strategy = test_case.strategy;
  options.use_relative_phase = test_case.use_relative_phase;
  const auto mapped = map_to_clifford_t( source, options );

  if ( num_controls > 2u &&
       ( test_case.strategy == mct_strategy::dirty ||
         test_case.strategy == mct_strategy::recursive ) )
  {
    EXPECT_EQ( mapped.num_helper_qubits, 0u ) << "borrowing strategies must not grow";
  }
  expect_mct_equivalent( mapped.circuit, source );
}

INSTANTIATE_TEST_SUITE_P(
    arities, mct_strategy_test,
    ::testing::Combine(
        ::testing::Values( 0u, 1u, 2u, 3u, 4u, 5u, 6u ),
        ::testing::Values( strategy_case{ mct_strategy::clean, true, 0u },
                           strategy_case{ mct_strategy::clean, false, 0u },
                           strategy_case{ mct_strategy::dirty, true, 0u },
                           strategy_case{ mct_strategy::recursive, true, 1u },
                           strategy_case{ mct_strategy::automatic, true, 1u } ) ) );

TEST( mct_lowering_test, mcz_lowering_is_equivalent )
{
  /* compare on a full data superposition with helpers in |0> (clean
   * helpers are only contracted to work from |0>, so whole-unitary
   * equality over helper inputs is not required) */
  qcircuit source( 4u );
  source.mcz( { 0u, 1u, 2u }, 3u );
  const auto lowered = lower_multi_controlled_gates( source );
  const uint32_t width = lowered.circuit.num_qubits();
  ASSERT_LE( width, 12u );

  qcircuit mapped_program( width );
  qcircuit reference_program( width );
  for ( uint32_t q = 0u; q < 4u; ++q )
  {
    mapped_program.h( q );
    reference_program.h( q );
  }
  mapped_program.append( lowered.circuit );
  reference_program.mcz( { 0u, 1u, 2u }, 3u );
  statevector_simulator sim_mapped( width );
  sim_mapped.run( mapped_program );
  statevector_simulator sim_reference( width );
  sim_reference.run( reference_program );
  for ( uint64_t basis = 0u; basis < ( uint64_t{ 1 } << width ); ++basis )
  {
    ASSERT_NEAR( std::abs( sim_mapped.state()[basis] - sim_reference.state()[basis] ), 0.0,
                 1e-9 )
        << "basis=" << basis;
  }
}

TEST( mct_lowering_test, forced_strategy_falls_back_when_infeasible )
{
  /* a 3-control gate spanning all four lines has no idle wire: dirty
   * cannot apply and the emitter falls back to the clean chain */
  rev_circuit source( 4u );
  source.add_gate( rev_gate::mct( { 0u, 1u, 2u }, {}, 3u ) );
  clifford_t_options options;
  options.strategy = mct_strategy::dirty;
  const auto mapped = map_to_clifford_t( source, options );
  EXPECT_EQ( mapped.num_helper_qubits, 1u );
  expect_mct_equivalent( mapped.circuit, source );
}

TEST( mct_lowering_test, qubit_budget_selects_borrowing_strategies )
{
  /* 5 controls on 6 lines: clean needs 3 helpers (9 wires); with a
   * budget of 7 only the recursive split (one borrowed wire) fits */
  rev_circuit source( 7u );
  source.add_gate( rev_gate::mct( { 0u, 1u, 2u, 3u, 4u }, {}, 5u ) );
  clifford_t_options options;
  options.max_qubits = 7u;
  const auto mapped = map_to_clifford_t( source, options );
  EXPECT_EQ( mapped.num_helper_qubits, 0u );
  expect_mct_equivalent( mapped.circuit, source );

  /* no idle wire and no helper headroom at all: no strategy fits */
  rev_circuit stuck( 6u );
  stuck.add_gate( rev_gate::mct( { 0u, 1u, 2u, 3u, 4u }, {}, 5u ) );
  clifford_t_options impossible;
  impossible.max_qubits = 6u;
  EXPECT_THROW( map_to_clifford_t( stuck, impossible ), std::invalid_argument );
}

/* ---------------------------------------------------------------- */
/* cost table                                                       */
/* ---------------------------------------------------------------- */

class mct_cost_test
    : public ::testing::TestWithParam<std::tuple<uint32_t, strategy_case>>
{
};

TEST_P( mct_cost_test, predictions_match_emitted_circuits )
{
  const auto [num_controls, test_case] = GetParam();
  const uint32_t spare =
      num_controls > 2u ? std::max( test_case.spare_lines, num_controls - 2u ) : 0u;
  const uint32_t num_lines = num_controls + 1u + spare;

  std::vector<uint32_t> controls( num_controls );
  for ( uint32_t i = 0u; i < num_controls; ++i )
  {
    controls[i] = i;
  }
  rev_circuit source( num_lines );
  source.add_gate( rev_gate::mct( controls, {}, num_controls ) );

  clifford_t_options options;
  options.strategy = test_case.strategy;
  options.use_relative_phase = test_case.use_relative_phase;
  const auto mapped = map_to_clifford_t( source, options );
  const auto stats = compute_statistics( mapped.circuit );
  const auto cost = mct_lowering_cost( num_controls, test_case.strategy,
                                       test_case.use_relative_phase );
  EXPECT_EQ( stats.t_count, cost.t_count );
  EXPECT_EQ( stats.cnot_count, cost.cnot_count );
  EXPECT_EQ( stats.h_count, cost.h_count );
  EXPECT_EQ( stats.num_gates, cost.depth ) << "depth counts serialized primitive gates";
}

INSTANTIATE_TEST_SUITE_P(
    table, mct_cost_test,
    ::testing::Combine(
        ::testing::Values( 2u, 3u, 4u, 5u, 6u, 7u ),
        ::testing::Values( strategy_case{ mct_strategy::clean, true, 0u },
                           strategy_case{ mct_strategy::clean, false, 0u },
                           strategy_case{ mct_strategy::dirty, true, 0u },
                           strategy_case{ mct_strategy::recursive, true, 1u } ) ) );

TEST( mct_cost_test, table_properties )
{
  /* legacy shorthand stays wired to the table */
  EXPECT_EQ( mct_t_count( 5u, true ),
             mct_lowering_cost( 5u, mct_strategy::clean, true ).t_count );
  /* relative phase halves the chain T-cost */
  EXPECT_LT( mct_lowering_cost( 6u, mct_strategy::clean, true ).t_count,
             mct_lowering_cost( 6u, mct_strategy::clean, false ).t_count );
  /* borrowing costs more gates but no qubits */
  const auto clean = mct_lowering_cost( 5u, mct_strategy::clean, true );
  const auto dirty = mct_lowering_cost( 5u, mct_strategy::dirty, true );
  EXPECT_GT( dirty.t_count, clean.t_count );
  EXPECT_EQ( clean.clean_ancillas, 3u );
  EXPECT_EQ( dirty.clean_ancillas, 0u );
  EXPECT_EQ( dirty.dirty_ancillas, 3u );
  EXPECT_EQ( mct_lowering_cost( 5u, mct_strategy::recursive, true ).dirty_ancillas, 1u );
  EXPECT_THROW( mct_lowering_cost( 4u, mct_strategy::automatic ), std::invalid_argument );

  /* selection honors feasibility: no idle wires forces the clean chain,
   * no clean headroom forces borrowing */
  mapping_cost_weights weights;
  EXPECT_EQ( select_mct_strategy( 5u, 3u, 0u, weights, true ), mct_strategy::clean );
  EXPECT_EQ( select_mct_strategy( 5u, 0u, 3u, weights, true ), mct_strategy::dirty );
  EXPECT_EQ( select_mct_strategy( 5u, 0u, 1u, weights, true ), mct_strategy::recursive );
  EXPECT_EQ( select_mct_strategy( 5u, 0u, 0u, weights, true ), std::nullopt );
}

/* ---------------------------------------------------------------- */
/* negative-control conjugation                                     */
/* ---------------------------------------------------------------- */

uint64_t count_x_gates( const qcircuit& circuit )
{
  uint64_t count = 0u;
  for ( const auto& gate : circuit.gates() )
  {
    count += gate.kind == gate_kind::x ? 1u : 0u;
  }
  return count;
}

TEST( negative_control_test, shared_negative_controls_emit_no_x_pairs )
{
  /* two CNOTs negatively controlled on the same line: the naive
   * conjugation emits X-X between them, the lazy one does not */
  rev_circuit source( 3u );
  source.add_gate( rev_gate::mct( {}, { 0u }, 1u ) );
  source.add_gate( rev_gate::mct( {}, { 0u }, 2u ) );
  const auto mapped = map_to_clifford_t( source );
  EXPECT_EQ( count_x_gates( mapped.circuit ), 2u ); /* not 4 */
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               source.to_permutation().images() ) );
}

TEST( negative_control_test, polarity_changes_resolve_pending_flips )
{
  /* same line used negative then positive then negative again */
  rev_circuit source( 2u );
  source.add_gate( rev_gate::mct( {}, { 0u }, 1u ) );
  source.add_gate( rev_gate::mct( { 0u }, {}, 1u ) );
  source.add_gate( rev_gate::mct( {}, { 0u }, 1u ) );
  const auto mapped = map_to_clifford_t( source );
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               source.to_permutation().images() ) );
  EXPECT_EQ( count_x_gates( mapped.circuit ), 4u );
}

TEST( negative_control_test, pending_flip_commutes_with_target_use )
{
  /* gate 1 leaves a pending X on line 0; gate 2 targets line 0 */
  rev_circuit source( 3u );
  source.add_gate( rev_gate::mct( {}, { 0u }, 1u ) );
  source.add_gate( rev_gate::mct( { 2u }, {}, 0u ) );
  source.add_gate( rev_gate::mct( {}, { 0u }, 1u ) );
  const auto mapped = map_to_clifford_t( source );
  EXPECT_TRUE( circuit_implements_permutation( mapped.circuit,
                                               source.to_permutation().images() ) );
}

TEST( negative_control_test, mixed_polarity_multi_gate_circuit )
{
  rev_circuit source( 4u );
  source.add_gate( rev_gate::mct( { 1u }, { 0u, 2u }, 3u ) );
  source.add_gate( rev_gate::mct( { 3u }, { 0u }, 1u ) );
  source.add_gate( rev_gate::mct( {}, { 0u, 1u, 2u }, 3u ) );
  const auto mapped = map_to_clifford_t( source );
  EXPECT_TRUE( circuit_implements_permutation_with_helpers(
      mapped.circuit, 4u, source.to_permutation().images() ) );
}

} // namespace
} // namespace qda
