#include "kernel/expression.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qda
{
namespace
{

TEST( expression_test, parses_paper_fig4_predicate )
{
  /* def f(a, b, c, d): return (a and b) ^ (c and d) */
  const auto expr = boolean_expression::parse( "(a and b) ^ (c and d)" );
  EXPECT_EQ( expr.num_variables(), 4u );
  EXPECT_EQ( expr.variables(), ( std::vector<std::string>{ "a", "b", "c", "d" } ) );
  const auto tt = expr.to_truth_table();
  EXPECT_EQ( tt, inner_product_function( 2u, /*interleaved=*/true ) );
}

TEST( expression_test, parses_paper_fig7_predicate )
{
  /* def f(a, b, c, d, e, f): return (a and b) ^ (c and d) ^ (e and f) */
  const auto expr = boolean_expression::parse( "(a and b) ^ (c and d) ^ (e and f)" );
  EXPECT_EQ( expr.num_variables(), 6u );
  EXPECT_EQ( expr.to_truth_table(), inner_product_function( 3u, /*interleaved=*/true ) );
}

TEST( expression_test, operator_symbols_and_words_agree )
{
  const auto symbolic = boolean_expression::parse( "(a & b) | !c" );
  const auto wordy = boolean_expression::parse( "(a and b) or not c" );
  EXPECT_EQ( symbolic.to_truth_table(), wordy.to_truth_table() );
}

TEST( expression_test, precedence_not_over_and_over_xor_over_or )
{
  /* a | b ^ c & !d  ==  a | (b ^ (c & (!d))) */
  const auto expr = boolean_expression::parse( "a | b ^ c & !d" );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const bool a = x & 1u, b = ( x >> 1u ) & 1u, c = ( x >> 2u ) & 1u, d = ( x >> 3u ) & 1u;
    EXPECT_EQ( expr.evaluate( x ), a || ( b != ( c && !d ) ) ) << "x=" << x;
  }
}

TEST( expression_test, constants )
{
  EXPECT_TRUE( boolean_expression::parse( "1" ).evaluate( 0u ) );
  EXPECT_FALSE( boolean_expression::parse( "0" ).evaluate( 0u ) );
  EXPECT_TRUE( boolean_expression::parse( "a ^ 1" ).to_truth_table() ==
               ~truth_table::projection( 1u, 0u ) );
}

TEST( expression_test, double_negation )
{
  const auto expr = boolean_expression::parse( "!!a" );
  EXPECT_EQ( expr.to_truth_table(), truth_table::projection( 1u, 0u ) );
}

TEST( expression_test, cpp_style_operators )
{
  const auto expr = boolean_expression::parse( "(a && b) || (~c && d)" );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const bool a = x & 1u, b = ( x >> 1u ) & 1u, c = ( x >> 2u ) & 1u, d = ( x >> 3u ) & 1u;
    EXPECT_EQ( expr.evaluate( x ), ( a && b ) || ( !c && d ) );
  }
}

TEST( expression_test, fixed_variable_ordering )
{
  const std::vector<std::string> vars{ "x", "y", "z" };
  const auto expr = boolean_expression::parse( "z & x", vars );
  EXPECT_EQ( expr.num_variables(), 3u );
  EXPECT_EQ( expr.to_truth_table(),
             truth_table::projection( 3u, 2u ) & truth_table::projection( 3u, 0u ) );
}

TEST( expression_test, fixed_ordering_rejects_unknown_variables )
{
  const std::vector<std::string> vars{ "x", "y" };
  EXPECT_THROW( boolean_expression::parse( "x & q", vars ), std::invalid_argument );
}

TEST( expression_test, syntax_errors )
{
  EXPECT_THROW( boolean_expression::parse( "a &" ), std::invalid_argument );
  EXPECT_THROW( boolean_expression::parse( "(a & b" ), std::invalid_argument );
  EXPECT_THROW( boolean_expression::parse( "a b" ), std::invalid_argument );
  EXPECT_THROW( boolean_expression::parse( "" ), std::invalid_argument );
  EXPECT_THROW( boolean_expression::parse( "a @ b" ), std::invalid_argument );
}

TEST( expression_test, to_string_roundtrip )
{
  const auto expr = boolean_expression::parse( "(a and b) ^ (c and d)" );
  const auto reparsed = boolean_expression::parse( expr.to_string() );
  EXPECT_EQ( reparsed.to_truth_table(), expr.to_truth_table() );
}

TEST( expression_test, to_truth_table_with_extra_variables )
{
  const auto expr = boolean_expression::parse( "a & b" );
  const auto tt = expr.to_truth_table( 4u );
  EXPECT_EQ( tt.num_vars(), 4u );
  EXPECT_EQ( tt, truth_table::projection( 4u, 0u ) & truth_table::projection( 4u, 1u ) );
  EXPECT_THROW( expr.to_truth_table( 1u ), std::invalid_argument );
}

TEST( expression_test, evaluate_agrees_with_truth_table )
{
  const auto expr = boolean_expression::parse( "(a ^ b) & (c | !d) ^ (a and d)" );
  const auto tt = expr.to_truth_table();
  for ( uint64_t x = 0u; x < tt.num_bits(); ++x )
  {
    ASSERT_EQ( expr.evaluate( x ), tt.get_bit( x ) );
  }
}

} // namespace
} // namespace qda
