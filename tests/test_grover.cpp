#include "core/grover.hpp"
#include "kernel/expression.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( grover_test, optimal_iterations_formula )
{
  /* single marked element out of 16: round(pi/4 * 4 - 0.5) = 3 */
  truth_table f( 4u );
  f.set_bit( 9u, true );
  EXPECT_EQ( grover_optimal_iterations( f ), 3u );

  /* a quarter marked: one iteration suffices exactly */
  truth_table quarter( 4u );
  for ( uint64_t x = 0u; x < 4u; ++x )
  {
    quarter.set_bit( x, true );
  }
  EXPECT_EQ( grover_optimal_iterations( quarter ), 1u );

  EXPECT_THROW( grover_optimal_iterations( truth_table( 3u ) ), std::invalid_argument );
}

TEST( grover_test, quarter_marked_is_exact_after_one_iteration )
{
  /* with M/N = 1/4 the rotation lands exactly on the marked subspace */
  truth_table f( 4u );
  f.set_bit( 3u, true );
  f.set_bit( 7u, true );
  f.set_bit( 11u, true );
  f.set_bit( 15u, true );
  EXPECT_NEAR( grover_success_probability( f, 1u ), 1.0, 1e-9 );
}

TEST( grover_test, single_marked_element_amplifies )
{
  truth_table f( 4u );
  f.set_bit( 13u, true );
  const double initial = 1.0 / 16.0;
  const double after = grover_success_probability( f, grover_optimal_iterations( f ) );
  EXPECT_GT( after, 0.9 );
  EXPECT_GT( after, initial * 10.0 );
}

TEST( grover_test, overrotation_reduces_success )
{
  truth_table f( 4u );
  f.set_bit( 5u, true );
  const double optimal = grover_success_probability( f, 3u );
  const double over = grover_success_probability( f, 6u );
  EXPECT_LT( over, optimal );
}

TEST( grover_test, search_returns_marked_element )
{
  const auto expr = boolean_expression::parse( "a & !b & c & d" ); /* marks 0b1101 */
  const auto f = expr.to_truth_table();
  for ( uint64_t seed = 1u; seed <= 5u; ++seed )
  {
    EXPECT_EQ( grover_search( f, seed ), 0b1101u ) << "seed=" << seed;
  }
}

TEST( grover_test, compiled_predicate_oracle )
{
  /* a predicate with a non-trivial ESOP cover */
  const auto expr = boolean_expression::parse( "(a ^ b) & (c | d) & !(a & d)" );
  const auto f = expr.to_truth_table();
  const double success = grover_success_probability( f, grover_optimal_iterations( f ) );
  EXPECT_GT( success, 0.8 );
}

TEST( grover_test, rejects_empty_function )
{
  EXPECT_THROW( grover_circuit( truth_table( 0u ), 1u ), std::invalid_argument );
}

class grover_sweep_test : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P( grover_sweep_test, amplification_across_sizes )
{
  const uint32_t n = GetParam();
  truth_table f( n );
  f.set_bit( ( uint64_t{ 1 } << n ) - 2u, true );
  const double success = grover_success_probability( f, grover_optimal_iterations( f ) );
  EXPECT_GT( success, 0.8 ) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P( sizes, grover_sweep_test, ::testing::Values( 3u, 4u, 5u, 6u, 7u ) );

} // namespace
} // namespace qda
