#include "core/engine.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( engine_test, plain_gate_streaming )
{
  main_engine eng( 2u );
  eng.h( 0u );
  eng.cx( 0u, 1u );
  eng.measure_all();
  const auto& circuit = eng.circuit();
  EXPECT_EQ( circuit.num_gates(), 4u );
  EXPECT_EQ( circuit.gate( 0u ).kind, gate_kind::h );
}

TEST( engine_test, compute_uncompute_roundtrip )
{
  main_engine eng( 2u );
  {
    auto computed = eng.compute();
    eng.h( 0u );
    eng.cx( 0u, 1u );
  }
  eng.uncompute();
  EXPECT_TRUE( circuits_equivalent( eng.circuit(), qcircuit( 2u ) ) );
}

TEST( engine_test, compute_sandwich_conjugates )
{
  /* compute [X0], Z0, uncompute == X Z X == -Z */
  main_engine eng( 1u );
  {
    auto computed = eng.compute();
    eng.x( 0u );
  }
  eng.z( 0u );
  eng.uncompute();

  qcircuit expected( 1u );
  expected.z( 0u ); /* up to global phase */
  EXPECT_TRUE( circuits_equivalent( eng.circuit(), expected ) );
}

TEST( engine_test, uncompute_without_compute_throws )
{
  main_engine eng( 1u );
  EXPECT_THROW( eng.uncompute(), std::logic_error );
}

TEST( engine_test, nested_compute_blocks )
{
  main_engine eng( 2u );
  {
    auto outer = eng.compute();
    eng.h( 0u );
    {
      auto inner = eng.compute();
      eng.t( 1u );
    }
    eng.uncompute(); /* undo inner */
  }
  eng.uncompute(); /* undo outer */
  EXPECT_TRUE( circuits_equivalent( eng.circuit(), qcircuit( 2u ) ) );
}

TEST( engine_test, dagger_block_inverts_order )
{
  main_engine eng( 1u );
  {
    auto daggered = eng.dagger();
    eng.t( 0u );
    eng.h( 0u );
  }
  qcircuit expected( 1u );
  expected.h( 0u );
  expected.tdg( 0u );
  EXPECT_EQ( eng.circuit().gates(), expected.gates() );
}

TEST( engine_test, dagger_of_dagger_is_identity_transform )
{
  main_engine eng( 1u );
  {
    auto d1 = eng.dagger();
    {
      auto d2 = eng.dagger();
      eng.t( 0u );
      eng.h( 0u );
    }
  }
  qcircuit expected( 1u );
  expected.t( 0u );
  expected.h( 0u );
  EXPECT_EQ( eng.circuit().gates(), expected.gates() );
}

TEST( engine_test, control_block_adds_controls )
{
  main_engine eng( 3u );
  {
    auto controlled = eng.control( 2u );
    eng.x( 0u );
    eng.cx( 0u, 1u );
    eng.z( 1u );
  }
  const auto& gates = eng.circuit().gates();
  ASSERT_EQ( gates.size(), 3u );
  EXPECT_EQ( gates[0].kind, gate_kind::cx );
  EXPECT_EQ( gates[0].materialize().controls, ( std::vector<uint32_t>{ 2u } ) );
  EXPECT_EQ( gates[1].kind, gate_kind::mcx );
  EXPECT_EQ( gates[2].kind, gate_kind::cz );
}

TEST( engine_test, control_block_rejects_unsupported_gates )
{
  main_engine eng( 2u );
  auto controlled = eng.control( 1u );
  eng.h( 0u );
  EXPECT_THROW( controlled.close(), std::logic_error );
}

TEST( engine_test, measure_inside_block_throws )
{
  main_engine eng( 1u );
  auto computed = eng.compute();
  EXPECT_THROW( eng.measure( 0u ), std::logic_error );
  computed.close();
}

TEST( engine_test, circuit_with_open_scope_throws )
{
  main_engine eng( 1u );
  auto computed = eng.compute();
  EXPECT_THROW( eng.circuit(), std::logic_error );
  computed.close();
  EXPECT_NO_THROW( eng.circuit() );
}

TEST( engine_test, apply_subcircuit_with_mapping )
{
  qcircuit sub( 2u );
  sub.cx( 0u, 1u );
  main_engine eng( 4u );
  eng.apply( sub, { 3u, 0u } );
  EXPECT_EQ( eng.circuit().gate( 0u ).controls[0], 3u );
  EXPECT_EQ( eng.circuit().gate( 0u ).target, 0u );
}

TEST( engine_test, run_returns_measured_bits_in_order )
{
  main_engine eng( 3u );
  eng.x( 2u );
  eng.measure( 2u );
  eng.measure( 0u );
  /* first measured bit (qubit 2, value 1) lands in outcome bit 0 */
  EXPECT_EQ( eng.run(), 0b01u );
}

TEST( engine_test, dagger_inside_compute_fig7_pattern )
{
  /* the Fig. 7 pattern: Compute { Dagger { U } }, phase, Uncompute */
  qcircuit u( 2u );
  u.cx( 0u, 1u );
  u.t( 1u );

  main_engine eng( 2u );
  {
    auto computed = eng.compute();
    {
      auto daggered = eng.dagger();
      eng.apply( u );
    }
  }
  eng.z( 0u );
  eng.uncompute();

  /* reference: U^dagger Z0 U */
  qcircuit expected( 2u );
  expected.append( u.adjoint() );
  expected.z( 0u );
  expected.append( u );
  EXPECT_TRUE( circuits_equivalent( eng.circuit(), expected ) );
}

TEST( main_engine_test, execute_on_switches_backends_by_name )
{
  /* the paper's "change two lines of code" (Sec. VII): the same program
   * runs on the simulator and the device model by target name; the
   * device path lowers the mcx with the target's own cost model first */
  main_engine eng( 4u );
  eng.x( 0u );
  eng.x( 1u );
  eng.x( 2u );
  eng.mcx( { 0u, 1u, 2u }, 3u );
  eng.measure_all();

  const auto simulated = eng.execute_on( "statevector", 32u, 5u );
  ASSERT_EQ( simulated.counts.size(), 1u );
  EXPECT_EQ( simulated.counts.begin()->first, 0b1111u );
  EXPECT_EQ( simulated.added_swaps, 0u );

  const auto device = eng.execute_on( "ibm_qx4_ideal", 32u, 5u );
  ASSERT_EQ( device.counts.size(), 1u );
  EXPECT_EQ( device.counts.begin()->first, 0b1111u );

  EXPECT_THROW( eng.execute_on( "nope", 8u ), std::invalid_argument );
}

} // namespace
} // namespace qda
