/*! \file test_circuit_ir.cpp
 *  \brief The unified gate-graph IR: handles, tombstones, rewriter,
 *         zero-copy views and the `circuit_cast` lowering hook.
 */
#include "circuit/circuit.hpp"
#include "circuit/circuit_cast.hpp"
#include "kernel/bits.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "optimization/revsimp.hpp"
#include "optimization/revsimp_reference.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( circuit_ir_test, handles_stay_stable_across_erase_and_compaction )
{
  rev_circuit circuit( 3u );
  const auto h0 = circuit.add_not( 0u );
  const auto h1 = circuit.add_cnot( 0u, 1u );
  const auto h2 = circuit.add_toffoli( 0u, 1u, 2u );
  const auto h3 = circuit.add_not( 2u );

  {
    auto rewriter = circuit.rewrite();
    rewriter.erase( h1 );
  } /* destructor commits and compacts */

  EXPECT_EQ( circuit.num_gates(), 3u );
  EXPECT_EQ( circuit.core().num_tombstones(), 0u );
  EXPECT_TRUE( circuit.core().alive( h0 ) );
  EXPECT_FALSE( circuit.core().alive( h1 ) );
  EXPECT_TRUE( circuit.core().alive( h2 ) );
  /* handles resolve to the same gates at their new slots */
  EXPECT_EQ( circuit.core()[h0], rev_gate::not_gate( 0u ) );
  EXPECT_EQ( circuit.core()[h2], rev_gate::toffoli( 0u, 1u, 2u ) );
  EXPECT_EQ( circuit.core()[h3], rev_gate::not_gate( 2u ) );
  EXPECT_EQ( circuit.core().slot_of( h3 ), 2u );
}

TEST( circuit_ir_test, erased_handles_are_rejected_not_dereferenced )
{
  rev_circuit circuit( 2u );
  circuit.add_not( 0u );
  const auto handle = circuit.add_cnot( 0u, 1u );
  {
    auto rewriter = circuit.rewrite();
    rewriter.erase( handle );
    rewriter.erase( handle ); /* idempotent, not UB */
    EXPECT_THROW( rewriter.replace( handle, rev_gate::not_gate( 1u ) ), std::out_of_range );
    EXPECT_THROW( rewriter.insert_before( handle, rev_gate::not_gate( 1u ) ),
                  std::out_of_range );
    EXPECT_THROW( rewriter.insert_after( handle, rev_gate::not_gate( 1u ) ),
                  std::out_of_range );
  }
  EXPECT_EQ( circuit.num_gates(), 1u );
  EXPECT_FALSE( circuit.core().alive( handle ) );
  EXPECT_EQ( circuit.core().slot_of( handle ), ir::npos );
  EXPECT_THROW( circuit.core()[handle], std::out_of_range );
}

TEST( circuit_ir_test, tombstone_erase_is_deferred_until_commit )
{
  rev_circuit circuit( 2u );
  circuit.add_not( 0u );
  circuit.add_not( 1u );
  circuit.add_cnot( 0u, 1u );

  auto rewriter = circuit.rewrite();
  rewriter.erase_slot( 1u );

  /* before commit: slot count unchanged, alive count and views adjust */
  EXPECT_EQ( circuit.core().num_slots(), 3u );
  EXPECT_EQ( circuit.num_gates(), 2u );
  EXPECT_EQ( circuit.core().num_tombstones(), 1u );
  EXPECT_EQ( circuit.gate( 1u ), rev_gate::cnot( 0u, 1u ) );

  rewriter.commit();
  EXPECT_EQ( circuit.core().num_slots(), 2u );
  EXPECT_EQ( circuit.core().num_tombstones(), 0u );
}

TEST( circuit_ir_test, rewriter_batches_inserts_in_document_order )
{
  qcircuit circuit( 1u );
  circuit.h( 0u );
  circuit.s( 0u );

  qgate x_gate;
  x_gate.kind = gate_kind::x;
  qgate z_gate;
  z_gate.kind = gate_kind::z;
  qgate t_gate;
  t_gate.kind = gate_kind::t;

  {
    auto rewriter = circuit.rewrite();
    rewriter.insert_after_slot( 0u, x_gate );  /* after h */
    rewriter.insert_before_slot( 1u, z_gate ); /* before s, after the after-insert */
    rewriter.append( t_gate );
  }

  ASSERT_EQ( circuit.num_gates(), 5u );
  EXPECT_EQ( circuit.gate( 0u ).kind, gate_kind::h );
  EXPECT_EQ( circuit.gate( 1u ).kind, gate_kind::x );
  EXPECT_EQ( circuit.gate( 2u ).kind, gate_kind::z );
  EXPECT_EQ( circuit.gate( 3u ).kind, gate_kind::s );
  EXPECT_EQ( circuit.gate( 4u ).kind, gate_kind::t );
}

TEST( circuit_ir_test, replace_keeps_slot_and_handle )
{
  rev_circuit circuit( 3u );
  circuit.add_not( 0u );
  const auto handle = circuit.add_cnot( 0u, 1u );
  circuit.add_not( 2u );

  {
    auto rewriter = circuit.rewrite();
    rewriter.replace( handle, rev_gate::toffoli( 0u, 2u, 1u ) );
  }

  EXPECT_EQ( circuit.num_gates(), 3u );
  EXPECT_EQ( circuit.core().slot_of( handle ), 1u );
  EXPECT_EQ( circuit.gate( 1u ), rev_gate::toffoli( 0u, 2u, 1u ) );
}

TEST( circuit_ir_test, quantum_views_span_the_operand_slab )
{
  qcircuit circuit( 3u );
  circuit.ccx( 0u, 1u, 2u );
  const auto view = circuit.gate( 0u );
  /* zero-copy: the controls span points straight into the SoA slab */
  EXPECT_EQ( view.controls.data(), circuit.core().columns().operands.data() );
  ASSERT_EQ( view.controls.size(), 2u );
  EXPECT_EQ( view.controls[0], 0u );
  EXPECT_EQ( view.controls[1], 1u );
}

TEST( circuit_ir_test, angle_pool_deduplicates )
{
  qcircuit circuit( 2u );
  circuit.rz( 0u, 0.25 );
  circuit.rz( 1u, 0.25 );
  circuit.rz( 0u, 0.5 );
  EXPECT_EQ( circuit.core().columns().angles.size(), 2u );
  EXPECT_EQ( circuit.gate( 1u ).angle, 0.25 );
  EXPECT_EQ( circuit.gate( 2u ).angle, 0.5 );
}

TEST( circuit_ir_test, gates_view_equality_is_structural )
{
  qcircuit a( 2u );
  a.h( 0u );
  a.cx( 0u, 1u );
  qcircuit b( 2u );
  b.h( 0u );
  b.cx( 0u, 1u );
  EXPECT_TRUE( a.gates() == b.gates() );
  b.t( 1u );
  EXPECT_FALSE( a.gates() == b.gates() );
}

TEST( circuit_ir_test, circuit_cast_runs_the_rptm_lowering )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  circuit.add_cnot( 0u, 1u );

  const auto via_cast = circuit_cast<clifford_t_result>( circuit );
  const auto direct = map_to_clifford_t( circuit );
  EXPECT_EQ( via_cast.num_helper_qubits, direct.num_helper_qubits );
  EXPECT_TRUE( via_cast.circuit == direct.circuit );

  const auto circuit_only = circuit_cast<qcircuit>( circuit );
  EXPECT_TRUE( circuit_only == direct.circuit );
}

TEST( circuit_ir_test, rewriter_revsimp_matches_legacy_reference )
{
  std::mt19937_64 rng( 7u );
  for ( uint32_t trial = 0u; trial < 50u; ++trial )
  {
    rev_circuit circuit( 4u );
    for ( uint32_t g = 0u; g < 24u; ++g )
    {
      const uint32_t target = rng() % 4u;
      const uint64_t controls = rng() & 0xfu & ~( uint64_t{ 1 } << target );
      circuit.add_gate( rev_gate( controls, rng() & 0xfu, target ) );
    }
    const auto baseline = reference::revsimp( circuit );
    rev_circuit in_place( circuit );
    revsimp_in_place( in_place );
    EXPECT_TRUE( revsimp( circuit ) == in_place ); /* wrapper == in-place */
    EXPECT_TRUE( equivalent( circuit, in_place ) );
    EXPECT_TRUE( equivalent( baseline, in_place ) );
    /* ESOP merging is not confluent, so the two scan orders may settle
     * on different fixpoints; across 500 sampled circuits the count
     * never differed by more than one gate in either direction */
    EXPECT_LE( in_place.num_gates(), baseline.num_gates() + 1u );
  }

  /* full-cancellation family: both must collapse to nothing */
  rev_circuit mirror( 4u );
  std::vector<rev_gate> half;
  for ( uint32_t g = 0u; g < 16u; ++g )
  {
    const uint32_t target = rng() % 4u;
    const uint64_t controls = rng() & 0xfu & ~( uint64_t{ 1 } << target );
    const rev_gate gate( controls, rng() & 0xfu, target );
    mirror.add_gate( gate );
    half.push_back( gate );
  }
  for ( auto it = half.rbegin(); it != half.rend(); ++it )
  {
    mirror.add_gate( *it );
  }
  EXPECT_EQ( reference::revsimp( mirror ).num_gates(), 0u );
  rev_circuit collapsed( mirror );
  revsimp_in_place( collapsed );
  EXPECT_EQ( collapsed.num_gates(), 0u );
}

TEST( circuit_ir_test, in_place_peephole_and_folding_preserve_semantics )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.t( 0u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u );
  circuit.cx( 0u, 1u );
  circuit.tdg( 1u );
  circuit.h( 2u );
  circuit.h( 2u );

  qcircuit optimized( circuit );
  peephole_in_place( optimized );
  phase_folding_in_place( optimized );
  EXPECT_LT( optimized.num_gates(), circuit.num_gates() );
  EXPECT_TRUE( circuits_equivalent( circuit, optimized ) );
}

TEST( circuit_ir_test, qcircuit_inverse_matches_adjoint_parity )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.t( 0u );
  circuit.cx( 0u, 1u );
  circuit.rz( 1u, 0.3 );

  EXPECT_TRUE( circuit.inverse() == circuit.adjoint() );

  qcircuit composed( 2u );
  composed.append( circuit );
  composed.append( circuit.inverse() );
  EXPECT_TRUE( circuits_equivalent( composed, qcircuit( 2u ) ) );
}

TEST( circuit_ir_test, swap_builder_emits_swap_gate )
{
  qcircuit circuit( 2u );
  circuit.swap_( 0u, 1u );
  EXPECT_EQ( circuit.gate( 0u ).kind, gate_kind::swap );
}

TEST( circuit_ir_test, self_referencing_views_and_self_append_are_safe )
{
  qcircuit circuit( 4u );
  circuit.mcx( { 0u, 1u, 2u }, 3u );
  circuit.h( 0u );
  /* duplicating a gate through its own view must not corrupt the slab,
   * even when the slab reallocates mid-append */
  for ( uint32_t rep = 0u; rep < 64u; ++rep )
  {
    circuit.add_gate( circuit.gate( 0u ) );
  }
  ASSERT_EQ( circuit.num_gates(), 66u );
  const auto last = circuit.gate( 65u );
  ASSERT_EQ( last.controls.size(), 3u );
  EXPECT_EQ( last.controls[2], 2u );

  qcircuit doubled( 2u );
  doubled.cx( 0u, 1u );
  doubled.t( 1u );
  doubled.append( doubled ); /* self-append: snapshot, then copy */
  ASSERT_EQ( doubled.num_gates(), 4u );
  EXPECT_EQ( doubled.gate( 2u ).kind, gate_kind::cx );
  EXPECT_EQ( doubled.gate( 2u ).controls[0], 0u );

  rev_circuit rev_doubled( 2u );
  rev_doubled.add_cnot( 0u, 1u );
  rev_doubled.append( rev_doubled );
  EXPECT_EQ( rev_doubled.num_gates(), 2u );
  EXPECT_EQ( rev_doubled.gate( 1u ), rev_gate::cnot( 0u, 1u ) );
}

TEST( circuit_ir_test, prepend_keeps_existing_handles_valid )
{
  rev_circuit circuit( 2u );
  const auto first = circuit.add_cnot( 0u, 1u );
  circuit.prepend_gate( rev_gate::not_gate( 0u ) );
  EXPECT_EQ( circuit.gate( 0u ), rev_gate::not_gate( 0u ) );
  EXPECT_EQ( circuit.core().slot_of( first ), 1u );
  EXPECT_EQ( circuit.core()[first], rev_gate::cnot( 0u, 1u ) );
}

} // namespace
} // namespace qda
