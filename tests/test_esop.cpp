#include "esop/esop.hpp"
#include "kernel/cube.hpp"
#include "kernel/expression.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( cube_test, literal_and_membership )
{
  const auto c = cube::literal( 2u, true );
  EXPECT_EQ( c.num_literals(), 1u );
  EXPECT_TRUE( c.contains( 0b100u ) );
  EXPECT_FALSE( c.contains( 0b000u ) );
  EXPECT_TRUE( c.contains( 0b111u ) );

  const auto n = cube::literal( 0u, false );
  EXPECT_TRUE( n.contains( 0b10u ) );
  EXPECT_FALSE( n.contains( 0b01u ) );
}

TEST( cube_test, one_cube_contains_everything )
{
  const auto c = cube::one();
  EXPECT_EQ( c.num_literals(), 0u );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    EXPECT_TRUE( c.contains( x ) );
  }
}

TEST( cube_test, add_remove_literals )
{
  cube c;
  c.add_literal( 0u, true );
  c.add_literal( 3u, false );
  EXPECT_EQ( c.num_literals(), 2u );
  EXPECT_TRUE( c.contains( 0b0001u ) );
  EXPECT_FALSE( c.contains( 0b1001u ) );
  c.remove_literal( 3u );
  EXPECT_TRUE( c.contains( 0b1001u ) );
  EXPECT_THROW( c.add_literal( 32u, true ), std::invalid_argument );
}

TEST( cube_test, distance )
{
  const cube a( 0b011u, 0b011u );  /* x0 x1 */
  const cube b( 0b011u, 0b001u );  /* x0 !x1 */
  const cube c( 0b101u, 0b101u );  /* x0 x2 */
  EXPECT_EQ( a.distance( a ), 0u );
  EXPECT_EQ( a.distance( b ), 1u );
  EXPECT_EQ( a.distance( c ), 2u );
  EXPECT_EQ( b.distance( c ), 2u ); /* x1 occurrence and x2 occurrence differ; x0 agrees */
}

TEST( cube_test, to_string )
{
  EXPECT_EQ( cube::one().to_string( 3u ), "1" );
  cube c;
  c.add_literal( 0u, true );
  c.add_literal( 2u, false );
  EXPECT_EQ( c.to_string( 3u ), "x0 !x2" );
}

TEST( esop_test, pprm_of_and_function )
{
  const auto f = truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u );
  const auto cover = esop_from_pprm( f );
  ASSERT_EQ( cover.size(), 1u );
  EXPECT_EQ( cover[0].mask, 0b11u );
  EXPECT_EQ( cover[0].polarity, 0b11u );
}

TEST( esop_test, pprm_of_or_needs_three_cubes )
{
  const auto f = truth_table::projection( 2u, 0u ) | truth_table::projection( 2u, 1u );
  const auto cover = esop_from_pprm( f );
  /* x | y = x ^ y ^ xy */
  EXPECT_EQ( cover.size(), 3u );
  EXPECT_EQ( esop_to_truth_table( cover, 2u ), f );
}

TEST( esop_test, pprm_uses_positive_literals_only )
{
  const auto f = random_truth_table( 6u, 321u );
  for ( const auto& term : esop_from_pprm( f ) )
  {
    EXPECT_EQ( term.polarity, term.mask );
  }
}

TEST( esop_test, pprm_is_exact_on_random_functions )
{
  for ( uint64_t seed = 0u; seed < 20u; ++seed )
  {
    const auto f = random_truth_table( 7u, seed );
    ASSERT_EQ( esop_to_truth_table( esop_from_pprm( f ), 7u ), f ) << "seed=" << seed;
  }
}

TEST( esop_test, pkrm_is_exact_on_random_functions )
{
  for ( uint64_t seed = 0u; seed < 20u; ++seed )
  {
    const auto f = random_truth_table( 6u, seed );
    ASSERT_EQ( esop_to_truth_table( esop_from_pkrm( f ), 6u ), f ) << "seed=" << seed;
  }
}

TEST( esop_test, pkrm_not_larger_than_pprm_on_negation_heavy_function )
{
  /* !x0 & !x1 & !x2: PPRM expands to 8 cubes, PKRM needs 1 */
  const auto f = ~( truth_table::projection( 3u, 0u ) | truth_table::projection( 3u, 1u ) |
                    truth_table::projection( 3u, 2u ) );
  EXPECT_EQ( esop_from_pprm( f ).size(), 8u );
  EXPECT_EQ( esop_from_pkrm( f ).size(), 1u );
}

TEST( esop_test, pkrm_handles_constants )
{
  EXPECT_TRUE( esop_from_pkrm( truth_table( 4u ) ).empty() );
  const auto ones = esop_from_pkrm( truth_table::constant( 4u, true ) );
  ASSERT_EQ( ones.size(), 1u );
  EXPECT_EQ( ones[0], cube::one() );
}

TEST( esop_test, minimize_cancels_duplicate_cubes )
{
  esop_cover cover{ cube( 0b11u, 0b11u ), cube( 0b11u, 0b11u ) };
  const auto minimized = minimize_esop( cover );
  EXPECT_TRUE( minimized.empty() );
}

TEST( esop_test, minimize_merges_distance_one_pairs )
{
  /* x0 x1 ^ x0 !x1 = x0 */
  esop_cover cover{ cube( 0b11u, 0b11u ), cube( 0b11u, 0b01u ) };
  const auto minimized = minimize_esop( cover );
  ASSERT_EQ( minimized.size(), 1u );
  EXPECT_EQ( minimized[0], cube( 0b01u, 0b01u ) );

  /* x0 ^ x0 x1 = x0 !x1 */
  esop_cover cover2{ cube( 0b01u, 0b01u ), cube( 0b11u, 0b11u ) };
  const auto minimized2 = minimize_esop( cover2 );
  ASSERT_EQ( minimized2.size(), 1u );
  EXPECT_EQ( minimized2[0], cube( 0b11u, 0b01u ) );
}

TEST( esop_test, minimize_preserves_function_on_random_covers )
{
  for ( uint64_t seed = 0u; seed < 30u; ++seed )
  {
    const auto f = random_truth_table( 6u, seed * 7u + 1u );
    const auto cover = esop_from_pprm( f );
    const auto minimized = minimize_esop( cover );
    ASSERT_EQ( esop_to_truth_table( minimized, 6u ), f ) << "seed=" << seed;
    EXPECT_LE( minimized.size(), cover.size() );
  }
}

TEST( esop_test, esop_for_function_picks_good_cover )
{
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto cover = esop_for_function( f );
  EXPECT_EQ( esop_to_truth_table( cover, 4u ), f );
  EXPECT_EQ( cover.size(), 2u ); /* (a & b) ^ (c & d) */
}

TEST( esop_test, evaluate_esop_matches_expansion )
{
  const auto expr = boolean_expression::parse( "(a ^ b) | (c & !a)" );
  const auto f = expr.to_truth_table();
  const auto cover = esop_for_function( f );
  for ( uint64_t x = 0u; x < f.num_bits(); ++x )
  {
    ASSERT_EQ( evaluate_esop( cover, x ), f.get_bit( x ) );
  }
}

TEST( esop_test, literal_count )
{
  esop_cover cover{ cube( 0b11u, 0b11u ), cube( 0b111u, 0b010u ) };
  EXPECT_EQ( esop_literal_count( cover ), 5u );
}

class esop_property_test : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P( esop_property_test, pkrm_exactness_across_sizes )
{
  const uint32_t num_vars = GetParam();
  for ( uint64_t seed = 0u; seed < 5u; ++seed )
  {
    const auto f = random_truth_table( num_vars, seed + 100u );
    const auto cover = minimize_esop( esop_from_pkrm( f ) );
    ASSERT_EQ( esop_to_truth_table( cover, num_vars ), f )
        << "num_vars=" << num_vars << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, esop_property_test, ::testing::Values( 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u ) );

} // namespace
} // namespace qda
