#include "kernel/expression.hpp"
#include "networks/lut.hpp"
#include "networks/xag.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( xag_test, constants_and_pis )
{
  xag_network net;
  EXPECT_EQ( net.get_constant( false ), 0u );
  EXPECT_EQ( net.get_constant( true ), 1u );
  const auto a = net.create_pi();
  const auto b = net.create_pi();
  EXPECT_EQ( net.num_pis(), 2u );
  EXPECT_NE( a, b );
}

TEST( xag_test, and_constant_folding )
{
  xag_network net;
  const auto a = net.create_pi();
  EXPECT_EQ( net.create_and( a, net.get_constant( false ) ), net.get_constant( false ) );
  EXPECT_EQ( net.create_and( a, net.get_constant( true ) ), a );
  EXPECT_EQ( net.create_and( a, a ), a );
  EXPECT_EQ( net.create_and( a, xag_network::create_not( a ) ), net.get_constant( false ) );
  EXPECT_EQ( net.num_gates(), 0u );
}

TEST( xag_test, xor_constant_folding )
{
  xag_network net;
  const auto a = net.create_pi();
  EXPECT_EQ( net.create_xor( a, a ), net.get_constant( false ) );
  EXPECT_EQ( net.create_xor( a, xag_network::create_not( a ) ), net.get_constant( true ) );
  EXPECT_EQ( net.create_xor( a, net.get_constant( false ) ), a );
  EXPECT_EQ( net.create_xor( a, net.get_constant( true ) ), xag_network::create_not( a ) );
  EXPECT_EQ( net.num_gates(), 0u );
}

TEST( xag_test, structural_hashing_deduplicates )
{
  xag_network net;
  const auto a = net.create_pi();
  const auto b = net.create_pi();
  const auto g1 = net.create_and( a, b );
  const auto g2 = net.create_and( b, a );
  EXPECT_EQ( g1, g2 );
  EXPECT_EQ( net.num_gates(), 1u );

  /* XOR complement canonicalization: (!a ^ b) == !(a ^ b) structurally */
  const auto x1 = net.create_xor( xag_network::create_not( a ), b );
  const auto x2 = net.create_xor( a, xag_network::create_not( b ) );
  EXPECT_EQ( x1, x2 );
  EXPECT_EQ( net.num_gates(), 2u );
}

TEST( xag_test, simulation_matches_expression )
{
  const auto expr = boolean_expression::parse( "(a & b) ^ (c & d)" );
  const auto net = xag_network::from_expression( expr );
  EXPECT_EQ( net.num_pis(), 4u );
  EXPECT_EQ( net.num_pos(), 1u );
  const auto tables = net.simulate();
  ASSERT_EQ( tables.size(), 1u );
  EXPECT_EQ( tables[0], expr.to_truth_table() );
  EXPECT_EQ( net.num_and_gates(), 2u );
  EXPECT_EQ( net.num_xor_gates(), 1u );
}

TEST( xag_test, from_expression_handles_or_and_not )
{
  const auto expr = boolean_expression::parse( "!(a | b) ^ (c or !d)" );
  const auto net = xag_network::from_expression( expr );
  EXPECT_EQ( net.simulate()[0], expr.to_truth_table() );
}

TEST( xag_test, from_truth_table_is_exact )
{
  for ( uint64_t seed = 0u; seed < 15u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 200u );
    const auto net = xag_network::from_truth_table( f );
    ASSERT_EQ( net.simulate()[0], f ) << "seed=" << seed;
  }
}

TEST( xag_test, simulate_signal )
{
  xag_network net;
  const auto a = net.create_pi();
  const auto b = net.create_pi();
  const auto g = net.create_and( a, b );
  net.create_po( g );
  EXPECT_EQ( net.simulate_signal( xag_network::create_not( g ) ),
             ~( truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) ) );
}

TEST( xag_test, pis_must_precede_gates )
{
  xag_network net;
  const auto a = net.create_pi();
  const auto b = net.create_pi();
  net.create_and( a, b );
  EXPECT_THROW( net.create_pi(), std::logic_error );
}

TEST( lut_test, add_lut_validation )
{
  lut_network net( 2u );
  EXPECT_THROW( net.add_lut( { 0u, 1u }, truth_table( 1u ) ), std::invalid_argument );
  EXPECT_THROW( net.add_lut( { 5u }, truth_table( 1u ) ), std::invalid_argument );
  const auto id = net.add_lut( { 0u, 1u },
                               truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) );
  EXPECT_EQ( id, 2u );
  EXPECT_THROW( net.add_po( 9u ), std::invalid_argument );
  net.add_po( id );
  EXPECT_EQ( net.num_pos(), 1u );
}

TEST( lut_test, simulate_small_network )
{
  lut_network net( 3u );
  const auto conj = net.add_lut( { 0u, 1u },
                                 truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) );
  const auto sum = net.add_lut( { conj, 2u },
                                truth_table::projection( 2u, 0u ) ^ truth_table::projection( 2u, 1u ) );
  net.add_po( sum );
  const auto tables = net.simulate();
  ASSERT_EQ( tables.size(), 1u );
  const auto expected = ( truth_table::projection( 3u, 0u ) & truth_table::projection( 3u, 1u ) ) ^
                        truth_table::projection( 3u, 2u );
  EXPECT_EQ( tables[0], expected );
  EXPECT_EQ( net.num_internal_luts(), 1u );
  EXPECT_EQ( net.max_fanin_size(), 2u );
}

TEST( lut_map_test, preserves_function_on_random_xags )
{
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto f = random_truth_table( 6u, seed + 300u );
    const auto net = xag_network::from_truth_table( f );
    for ( const uint32_t k : { 2u, 3u, 4u, 5u, 6u } )
    {
      const auto mapped = lut_map( net, k );
      ASSERT_EQ( mapped.simulate()[0], f ) << "seed=" << seed << " k=" << k;
      EXPECT_LE( mapped.max_fanin_size(), k );
    }
  }
}

TEST( lut_map_test, bigger_cuts_need_fewer_luts )
{
  const auto f = random_truth_table( 8u, 1234u );
  const auto net = xag_network::from_truth_table( f );
  const auto mapped2 = lut_map( net, 2u );
  const auto mapped6 = lut_map( net, 6u );
  EXPECT_LE( mapped6.num_luts(), mapped2.num_luts() );
}

TEST( lut_map_test, handles_complemented_and_constant_outputs )
{
  xag_network net;
  const auto a = net.create_pi();
  const auto b = net.create_pi();
  net.create_po( xag_network::create_not( net.create_and( a, b ) ) );
  net.create_po( net.get_constant( false ) );
  const auto mapped = lut_map( net, 4u );
  const auto tables = mapped.simulate();
  ASSERT_EQ( tables.size(), 2u );
  EXPECT_EQ( tables[0],
             ~( truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) ) );
  EXPECT_TRUE( tables[1].is_constant0() );
}

TEST( lut_map_test, rejects_bad_cut_size )
{
  xag_network net;
  EXPECT_THROW( lut_map( net, 1u ), std::invalid_argument );
  EXPECT_THROW( lut_map( net, 7u ), std::invalid_argument );
}

TEST( lut_map_test, multi_output_network )
{
  const auto e1 = boolean_expression::parse( "(a & b) ^ c" );
  auto net = xag_network::from_expression( e1 );
  /* add a second output reusing nodes */
  net.create_po( net.get_constant( true ) );
  const auto mapped = lut_map( net, 3u );
  const auto tables = mapped.simulate();
  ASSERT_EQ( tables.size(), 2u );
  EXPECT_EQ( tables[0], e1.to_truth_table() );
  EXPECT_TRUE( tables[1].is_constant1() );
}

} // namespace
} // namespace qda
