/*! Edge-case and stress tests targeting corner behaviour that the main
 *  suites do not reach: word boundaries, degenerate arities, epoch
 *  overflow in phase folding, deep cross-backend checks.
 */
#include "bdd/bdd.hpp"
#include "esop/esop.hpp"
#include "kernel/spectral.hpp"
#include "optimization/phase_folding.hpp"
#include "optimization/revsimp.hpp"
#include "quantum/qsharp.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( edge_case_test, zero_variable_truth_tables )
{
  truth_table tt( 0u );
  EXPECT_EQ( tt.num_bits(), 1u );
  EXPECT_TRUE( tt.is_constant0() );
  tt.set_bit( 0u, true );
  EXPECT_TRUE( tt.is_constant1() );
  EXPECT_TRUE( tt.support().empty() );
}

TEST( edge_case_test, single_variable_everything )
{
  const auto x = truth_table::projection( 1u, 0u );
  EXPECT_TRUE( x.depends_on( 0u ) );
  EXPECT_EQ( esop_from_pkrm( x ).size(), 1u );
  const auto spectrum = walsh_spectrum( x );
  EXPECT_EQ( spectrum[0], 0 );
  EXPECT_EQ( spectrum[1], 2 );

  const auto pi = permutation::from_vector( { 1u, 0u } );
  const auto tbs = transformation_based_synthesis( pi );
  ASSERT_EQ( tbs.num_gates(), 1u );
  EXPECT_EQ( tbs.gate( 0u ), rev_gate::not_gate( 0u ) );
  const auto dbs = decomposition_based_synthesis( pi );
  EXPECT_EQ( dbs.simulate( 0u ), 1u );
}

TEST( edge_case_test, truth_table_exactly_at_word_boundary )
{
  /* 6 variables = exactly one 64-bit word; 7 = exactly two */
  const auto f6 = random_truth_table( 6u, 1u );
  EXPECT_EQ( f6.num_words(), 1u );
  const auto f7 = random_truth_table( 7u, 1u );
  EXPECT_EQ( f7.num_words(), 2u );
  /* cofactor across the word boundary variable */
  const auto c0 = f7.cofactor0( 6u );
  const auto c1 = f7.cofactor1( 6u );
  for ( uint64_t x = 0u; x < 64u; ++x )
  {
    ASSERT_EQ( c0.get_bit( x ), f7.get_bit( x ) );
    ASSERT_EQ( c1.get_bit( x ), f7.get_bit( x | 64u ) );
  }
}

TEST( edge_case_test, esop_minimization_is_idempotent )
{
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto f = random_truth_table( 5u, seed + 77u );
    const auto once = minimize_esop( esop_from_pprm( f ) );
    const auto twice = minimize_esop( once );
    EXPECT_EQ( once.size(), twice.size() ) << "seed=" << seed;
  }
}

TEST( edge_case_test, bdd_of_parity_is_linear_size )
{
  /* parity has the worst-case ESOP but a linear BDD: a structural
   * sanity check that the packages are genuinely different engines */
  constexpr uint32_t n = 12u;
  bdd_manager mgr( n );
  auto parity = mgr.constant( false );
  for ( uint32_t v = 0u; v < n; ++v )
  {
    parity = mgr.lxor( parity, mgr.variable( v ) );
  }
  EXPECT_EQ( mgr.count_nodes( parity ), 2u * n - 1u );
  EXPECT_EQ( mgr.count_satisfying( parity ), uint64_t{ 1 } << ( n - 1u ) );
}

TEST( edge_case_test, revsimp_on_empty_and_singleton_circuits )
{
  EXPECT_EQ( revsimp( rev_circuit( 3u ) ).num_gates(), 0u );
  rev_circuit single( 3u );
  single.add_toffoli( 0u, 1u, 2u );
  EXPECT_EQ( revsimp( single ).num_gates(), 1u );
}

TEST( edge_case_test, phase_folding_survives_variable_epoch_overflow )
{
  /* more than 64 fresh labels force an epoch restart; correctness must
   * survive and terms from different epochs must not merge */
  qcircuit clean( 4u );
  for ( uint32_t block = 0u; block < 40u; ++block )
  {
    for ( uint32_t q = 0u; q < 4u; ++q )
    {
      clean.h( q );
    }
    clean.t( block % 4u );
    clean.cx( block % 4u, ( block + 1u ) % 4u );
  }
  const auto folded = phase_folding( clean );
  EXPECT_TRUE( circuits_equivalent( folded, clean ) );
}

TEST( edge_case_test, phase_folding_of_pure_phase_circuit_collapses )
{
  qcircuit circuit( 1u );
  for ( uint32_t i = 0u; i < 8u; ++i )
  {
    circuit.t( 0u ); /* T^8 = identity */
  }
  const auto folded = phase_folding( circuit );
  EXPECT_EQ( folded.num_gates(), 0u );
  EXPECT_TRUE( circuits_equivalent( folded, qcircuit( 1u ) ) );
}

TEST( edge_case_test, phase_folding_emits_composite_angles )
{
  qcircuit circuit( 1u );
  circuit.t( 0u );
  circuit.t( 0u );
  circuit.t( 0u ); /* 3 pi/4 = S then T */
  const auto folded = phase_folding( circuit );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
  EXPECT_EQ( compute_statistics( folded ).t_count, 1u );
}

TEST( edge_case_test, dbs_on_permutations_fixing_low_bits )
{
  /* permutations acting only on high variables exercise the trivial-step
   * skip inside the Young subgroup decomposition */
  permutation pi( 4u );
  pi.set_image( 0b0000u, 0b0100u );
  pi.set_image( 0b0100u, 0b1100u );
  pi.set_image( 0b1100u, 0b0000u );
  const auto circuit = decomposition_based_synthesis( pi );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    ASSERT_EQ( circuit.simulate( x ), pi[x] );
  }
}

TEST( edge_case_test, stabilizer_x_basis_chain )
{
  /* long alternating H/S chain, compare against statevector */
  qcircuit circuit( 2u );
  for ( uint32_t i = 0u; i < 24u; ++i )
  {
    circuit.h( i % 2u );
    circuit.s( ( i + 1u ) % 2u );
    circuit.cz( 0u, 1u );
  }
  statevector_simulator sv( 2u );
  sv.run( circuit );
  const auto probabilities = sv.probabilities();

  qcircuit measured = circuit;
  measured.measure_all();
  const auto counts = stabilizer_sample_counts( measured, 256u, 3u );
  for ( const auto& [outcome, count] : counts )
  {
    ASSERT_GT( probabilities[outcome], 1e-9 ) << outcome;
  }
}

TEST( edge_case_test, qsharp_hidden_shift_namespace_matches_fig9 )
{
  const auto code = write_qsharp_hidden_shift_namespace();
  EXPECT_NE( code.find( "namespace Microsoft.Quantum.HiddenShift" ), std::string::npos );
  EXPECT_NE( code.find( "operation HiddenShift" ), std::string::npos );
  EXPECT_NE( code.find( "(Ufstar : (Qubit[] => ())" ), std::string::npos );
  EXPECT_NE( code.find( "ApplyToEach(H, qubits);" ), std::string::npos );
  EXPECT_NE( code.find( "MResetZ(qubits[idx]);" ), std::string::npos );
  EXPECT_NE( code.find( "using (qubits = Qubit[n])" ), std::string::npos );
  /* the Fig. 3 structure: three H layers, two oracle calls in between */
  const auto first_h = code.find( "ApplyToEach(H, qubits);" );
  const auto ug = code.find( "Ug(qubits);" );
  const auto ufstar = code.find( "Ufstar(qubits);" );
  EXPECT_LT( first_h, ug );
  EXPECT_LT( ug, ufstar );
}

TEST( edge_case_test, tbs_worst_case_permutation_still_correct )
{
  /* a permutation that keeps every row unfixed as long as possible */
  const uint32_t n = 5u;
  permutation pi( n );
  const uint64_t size = pi.size();
  for ( uint64_t x = 0u; x < size; ++x )
  {
    pi.set_image( x, size - 1u - x ); /* bitwise complement */
  }
  const auto circuit = transformation_based_synthesis( pi );
  for ( uint64_t x = 0u; x < size; ++x )
  {
    ASSERT_EQ( circuit.simulate( x ), size - 1u - x );
  }
  /* complement is just NOTs on every line: synthesis should find that */
  EXPECT_EQ( circuit.num_gates(), n );
}

TEST( edge_case_test, rev_gate_on_line_63 )
{
  rev_circuit circuit( 64u );
  circuit.add_cnot( 62u, 63u ); /* sets bit 63 when bit 62 is set */
  circuit.add_not( 63u );       /* flips it back */
  const uint64_t input = uint64_t{ 1 } << 62u;
  EXPECT_EQ( circuit.simulate( input ), input );
  EXPECT_EQ( circuit.simulate( 0u ), uint64_t{ 1 } << 63u );
}

} // namespace
} // namespace qda
