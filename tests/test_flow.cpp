#include "core/flow.hpp"
#include "core/ibm_backend.hpp"
#include "simulator/statevector.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( flow_test, eq5_pipeline_runs_end_to_end )
{
  /* revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c */
  flow pipeline;
  const auto stats = pipeline.revgen_hwb( 4u ).tbs().revsimp().rptm().tpar().ps();
  EXPECT_EQ( stats.num_qubits, pipeline.quantum().num_qubits() );
  EXPECT_GT( stats.num_gates, 0u );
  EXPECT_GT( stats.t_count, 0u );
  EXPECT_TRUE( pipeline.verify() );
}

TEST( flow_test, stage_order_is_enforced )
{
  flow pipeline;
  EXPECT_THROW( pipeline.tbs(), std::logic_error );
  pipeline.revgen_hwb( 3u );
  EXPECT_THROW( pipeline.revsimp(), std::logic_error );
  EXPECT_THROW( pipeline.rptm(), std::logic_error );
  pipeline.tbs();
  EXPECT_THROW( pipeline.tpar(), std::logic_error );
  EXPECT_THROW( pipeline.ps(), std::logic_error );
  pipeline.rptm();
  EXPECT_NO_THROW( pipeline.ps() );
}

TEST( flow_test, revsimp_does_not_grow_circuit )
{
  flow raw;
  raw.revgen_hwb( 5u ).tbs();
  const auto before = raw.reversible().num_gates();
  raw.revsimp();
  EXPECT_LE( raw.reversible().num_gates(), before );
}

TEST( flow_test, tpar_reduces_or_keeps_t_count )
{
  flow pipeline;
  pipeline.revgen_hwb( 4u ).tbs().revsimp().rptm();
  const auto before = pipeline.ps().t_count;
  pipeline.tpar();
  EXPECT_LE( pipeline.ps().t_count, before );
  EXPECT_TRUE( pipeline.verify() );
}

TEST( flow_test, all_synthesis_commands_verify )
{
  for ( const auto synth : { 0, 1, 2 } )
  {
    flow pipeline;
    pipeline.revgen( permutation::random( 4u, 2024u + synth ) );
    switch ( synth )
    {
    case 0: pipeline.tbs(); break;
    case 1: pipeline.tbs_bidirectional(); break;
    default: pipeline.dbs(); break;
    }
    pipeline.revsimp().rptm().tpar().peephole();
    EXPECT_TRUE( pipeline.verify() ) << "synth=" << synth;
  }
}

TEST( flow_test, rptm_variants )
{
  flow with_rp;
  with_rp.revgen_hwb( 4u ).tbs().rptm( /*use_relative_phase=*/true );
  flow without_rp;
  without_rp.revgen_hwb( 4u ).tbs().rptm( /*use_relative_phase=*/false );
  EXPECT_LE( with_rp.ps().t_count, without_rp.ps().t_count );
  EXPECT_TRUE( with_rp.verify() );
  EXPECT_TRUE( without_rp.verify() );
}

TEST( flow_test, ps_line_formatting )
{
  flow pipeline;
  pipeline.revgen_hwb( 3u ).tbs().rptm();
  const auto line = pipeline.ps_line();
  EXPECT_NE( line.find( "qubits:" ), std::string::npos );
  EXPECT_NE( line.find( "T-count:" ), std::string::npos );
}

TEST( ibm_backend_test, ideal_model_reproduces_logical_outcome )
{
  qcircuit circuit( 4u );
  circuit.x( 1u );
  circuit.cx( 1u, 3u ); /* distant on a line: forces routing */
  circuit.measure_all();
  const auto execution = run_on_ibm_model( circuit, coupling_map::ibm_qx4(),
                                           noise_model::ideal(), 64u, 5u );
  ASSERT_EQ( execution.counts.size(), 1u );
  EXPECT_EQ( execution.counts.begin()->first, 0b1010u );
}

TEST( ibm_backend_test, noise_spreads_outcomes )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure_all();
  const auto execution = run_on_ibm_model( circuit, coupling_map::ibm_qx4(),
                                           noise_model::ibm_qx4_early2018(), 2048u, 7u );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : execution.counts )
  {
    total += count;
  }
  EXPECT_EQ( total, 2048u );
  /* the two Bell outcomes dominate, but noise must populate others */
  EXPECT_GT( execution.counts.size(), 2u );
  const double bell = static_cast<double>( execution.counts.at( 0b00u ) +
                                           execution.counts.at( 0b11u ) ) /
                      2048.0;
  EXPECT_GT( bell, 0.8 );
}

TEST( ibm_backend_test, routing_statistics_reported )
{
  qcircuit circuit( 5u );
  circuit.cx( 0u, 4u ); /* q0 and q4 are far apart on qx4 */
  circuit.measure_all();
  const auto execution = run_on_ibm_model( circuit, coupling_map::ibm_qx4(),
                                           noise_model::ideal(), 16u, 3u );
  EXPECT_GT( execution.added_swaps + execution.added_direction_fixes, 0u );
}

} // namespace
} // namespace qda
