#include "bdd/bdd.hpp"
#include "kernel/truth_table.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( bdd_test, terminals )
{
  bdd_manager mgr( 3u );
  EXPECT_EQ( mgr.constant( false ), 0u );
  EXPECT_EQ( mgr.constant( true ), 1u );
  EXPECT_TRUE( mgr.is_terminal( 0u ) );
  EXPECT_TRUE( mgr.is_terminal( 1u ) );
  EXPECT_EQ( mgr.count_nodes( mgr.constant( true ) ), 0u );
}

TEST( bdd_test, variable_nodes_are_hash_consed )
{
  bdd_manager mgr( 3u );
  const auto x0 = mgr.variable( 0u );
  const auto x0_again = mgr.variable( 0u );
  EXPECT_EQ( x0, x0_again );
  EXPECT_THROW( mgr.variable( 3u ), std::invalid_argument );
}

TEST( bdd_test, basic_connectives )
{
  bdd_manager mgr( 2u );
  const auto x0 = mgr.variable( 0u );
  const auto x1 = mgr.variable( 1u );
  const auto conj = mgr.land( x0, x1 );
  const auto disj = mgr.lor( x0, x1 );
  const auto sum = mgr.lxor( x0, x1 );
  for ( uint64_t x = 0u; x < 4u; ++x )
  {
    const bool a = x & 1u, b = ( x >> 1u ) & 1u;
    EXPECT_EQ( mgr.evaluate( conj, x ), a && b );
    EXPECT_EQ( mgr.evaluate( disj, x ), a || b );
    EXPECT_EQ( mgr.evaluate( sum, x ), a != b );
  }
}

TEST( bdd_test, negation_is_involution )
{
  bdd_manager mgr( 4u );
  const auto f = mgr.lxor( mgr.land( mgr.variable( 0u ), mgr.variable( 1u ) ),
                           mgr.variable( 3u ) );
  EXPECT_EQ( mgr.lnot( mgr.lnot( f ) ), f );
}

TEST( bdd_test, reduction_eliminates_redundant_tests )
{
  bdd_manager mgr( 2u );
  const auto x0 = mgr.variable( 0u );
  /* ite(x0, x0, x0) must reduce to x0, ite(x0, 1, 1) to 1 */
  EXPECT_EQ( mgr.ite( x0, x0, x0 ), x0 );
  EXPECT_EQ( mgr.ite( x0, mgr.constant( true ), mgr.constant( true ) ), mgr.constant( true ) );
}

TEST( bdd_test, truth_table_roundtrip )
{
  bdd_manager mgr( 6u );
  for ( uint64_t seed = 0u; seed < 15u; ++seed )
  {
    const auto tt = random_truth_table( 6u, seed + 9u );
    const auto f = mgr.from_truth_table( tt );
    ASSERT_EQ( mgr.to_truth_table( f ), tt ) << "seed=" << seed;
  }
}

TEST( bdd_test, structural_canonicity )
{
  bdd_manager mgr( 5u );
  const auto tt = random_truth_table( 5u, 4u );
  const auto f = mgr.from_truth_table( tt );
  /* building the same function through connectives yields the same node */
  auto g = mgr.constant( false );
  for ( uint64_t x = 0u; x < tt.num_bits(); ++x )
  {
    if ( !tt.get_bit( x ) )
    {
      continue;
    }
    auto minterm = mgr.constant( true );
    for ( uint32_t v = 0u; v < 5u; ++v )
    {
      const auto lit = ( ( x >> v ) & 1u ) ? mgr.variable( v ) : mgr.lnot( mgr.variable( v ) );
      minterm = mgr.land( minterm, lit );
    }
    g = mgr.lor( g, minterm );
  }
  EXPECT_EQ( f, g );
}

TEST( bdd_test, count_satisfying )
{
  bdd_manager mgr( 4u );
  const auto x0 = mgr.variable( 0u );
  const auto x3 = mgr.variable( 3u );
  EXPECT_EQ( mgr.count_satisfying( mgr.constant( false ) ), 0u );
  EXPECT_EQ( mgr.count_satisfying( mgr.constant( true ) ), 16u );
  EXPECT_EQ( mgr.count_satisfying( x0 ), 8u );
  EXPECT_EQ( mgr.count_satisfying( mgr.land( x0, x3 ) ), 4u );
  EXPECT_EQ( mgr.count_satisfying( mgr.lor( x0, x3 ) ), 12u );
}

TEST( bdd_test, count_satisfying_matches_truth_table )
{
  bdd_manager mgr( 7u );
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto tt = random_truth_table( 7u, seed + 55u );
    const auto f = mgr.from_truth_table( tt );
    ASSERT_EQ( mgr.count_satisfying( f ), tt.count_ones() ) << "seed=" << seed;
  }
}

TEST( bdd_test, node_count_of_known_functions )
{
  bdd_manager mgr( 3u );
  /* parity over 3 variables: n internal nodes with XOR chains being BDD-friendly */
  auto parity = mgr.constant( false );
  for ( uint32_t v = 0u; v < 3u; ++v )
  {
    parity = mgr.lxor( parity, mgr.variable( v ) );
  }
  EXPECT_EQ( mgr.count_nodes( parity ), 5u ); /* 1 + 2 + 2 */
}

TEST( bdd_test, topological_order_children_first )
{
  bdd_manager mgr( 5u );
  const auto f = mgr.from_truth_table( random_truth_table( 5u, 77u ) );
  const auto order = mgr.topological_order( f );
  for ( size_t i = 0u; i < order.size(); ++i )
  {
    for ( const auto child : { mgr.node_low( order[i] ), mgr.node_high( order[i] ) } )
    {
      if ( mgr.is_terminal( child ) )
      {
        continue;
      }
      const auto child_pos = std::find( order.begin(), order.end(), child );
      ASSERT_NE( child_pos, order.end() );
      EXPECT_LT( static_cast<size_t>( std::distance( order.begin(), child_pos ) ), i );
    }
  }
}

TEST( bdd_test, evaluate_agrees_with_table )
{
  bdd_manager mgr( 8u );
  const auto tt = random_truth_table( 8u, 8u );
  const auto f = mgr.from_truth_table( tt );
  for ( uint64_t x = 0u; x < tt.num_bits(); x += 3u )
  {
    ASSERT_EQ( mgr.evaluate( f, x ), tt.get_bit( x ) );
  }
}

TEST( bdd_test, variable_count_mismatch_throws )
{
  bdd_manager mgr( 4u );
  EXPECT_THROW( mgr.from_truth_table( random_truth_table( 5u, 1u ) ), std::invalid_argument );
}

} // namespace
} // namespace qda
