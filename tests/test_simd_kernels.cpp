/*! \file test_simd_kernels.cpp
 *  \brief Cross-ISA and scheduling correctness of the SIMD kernel layer.
 *
 *  The runtime-dispatched primitive tables (simd.hpp: scalar / AVX2 /
 *  AVX-512) must agree amplitude-for-amplitude to 1e-12 on every kernel
 *  family, at qubit counts that straddle the vector widths (1..3 qubits
 *  force the tail paths, odd counts misalign the pair loops).  Within
 *  one ISA, results must be bit-identical for any thread count, and the
 *  cache-blocked tile schedule (schedule.hpp) must reproduce the naive
 *  reference.  Sampling at a fixed seed must give identical counts
 *  across thread counts and ISAs.
 */
#include "simulator/fusion.hpp"
#include "simulator/kernels.hpp"
#include "simulator/simd.hpp"
#include "simulator/statevector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

namespace qda
{
namespace
{

namespace sim = qda::sim;
using amplitude = sim::amplitude;

constexpr double amplitude_tolerance = 1e-12;

/*! Restores the global ISA and thread-count overrides on scope exit so
 *  one failing test cannot poison the rest of the suite. */
struct engine_guard
{
  ~engine_guard()
  {
    sim::set_isa( sim::detected_isa() );
    sim::set_num_threads( 0u );
  }
};

std::vector<sim::isa_kind> available_isas()
{
  std::vector<sim::isa_kind> isas{ sim::isa_kind::scalar };
  for ( const auto isa : { sim::isa_kind::avx2, sim::isa_kind::avx512 } )
  {
    if ( sim::isa_available( isa ) )
    {
      isas.push_back( isa );
    }
  }
  return isas;
}

/*! Random circuit over all kernel families; arms that need more qubits
 *  than available degrade to their small-register equivalents. */
qcircuit random_circuit( uint32_t num_qubits, uint32_t num_gates, uint64_t seed )
{
  std::mt19937_64 rng( seed );
  qcircuit circuit( num_qubits );
  for ( uint32_t g = 0u; g < num_gates; ++g )
  {
    const uint32_t q = rng() % num_qubits;
    switch ( rng() % 16u )
    {
    case 0u: circuit.h( q ); break;
    case 1u: circuit.x( q ); break;
    case 2u: circuit.y( q ); break;
    case 3u: circuit.z( q ); break;
    case 4u: circuit.s( q ); break;
    case 5u: circuit.sdg( q ); break;
    case 6u: circuit.t( q ); break;
    case 7u: circuit.tdg( q ); break;
    case 8u: circuit.rz( q, 0.1 * static_cast<double>( rng() % 60u ) ); break;
    case 9u: circuit.rx( q, 0.1 * static_cast<double>( rng() % 60u ) ); break;
    case 10u:
      if ( num_qubits >= 2u )
      {
        circuit.cx( q, ( q + 1u ) % num_qubits );
      }
      else
      {
        circuit.x( q );
      }
      break;
    case 11u:
      if ( num_qubits >= 2u )
      {
        circuit.cz( q, ( q + 1u + rng() % ( num_qubits - 1u ) ) % num_qubits );
      }
      else
      {
        circuit.z( q );
      }
      break;
    case 12u:
      if ( num_qubits >= 2u )
      {
        circuit.swap_( q, ( q + 1u ) % num_qubits );
      }
      else
      {
        circuit.h( q );
      }
      break;
    case 13u:
      if ( num_qubits >= 4u )
      {
        circuit.mcx( { q, ( q + 1u ) % num_qubits, ( q + 2u ) % num_qubits },
                     ( q + 3u ) % num_qubits );
      }
      else if ( num_qubits >= 2u )
      {
        circuit.cx( q, ( q + 1u ) % num_qubits );
      }
      else
      {
        circuit.x( q );
      }
      break;
    case 14u:
      if ( num_qubits >= 3u )
      {
        circuit.mcz( { q, ( q + 1u ) % num_qubits }, ( q + 2u ) % num_qubits );
      }
      else if ( num_qubits >= 2u )
      {
        circuit.cz( q, ( q + 1u ) % num_qubits );
      }
      else
      {
        circuit.z( q );
      }
      break;
    default: circuit.global_phase( 0.01 * static_cast<double>( rng() % 100u ) ); break;
    }
  }
  return circuit;
}

std::vector<amplitude> random_state( uint64_t dim, uint64_t seed )
{
  std::mt19937_64 rng( seed );
  std::normal_distribution<double> dist;
  std::vector<amplitude> state( dim );
  for ( auto& a : state )
  {
    a = { dist( rng ), dist( rng ) };
  }
  return state;
}

void expect_states_close( const std::vector<amplitude>& a, const std::vector<amplitude>& b,
                          const std::string& label )
{
  ASSERT_EQ( a.size(), b.size() ) << label;
  double worst = 0.0;
  for ( uint64_t i = 0u; i < a.size(); ++i )
  {
    worst = std::max( worst, std::abs( a[i] - b[i] ) );
  }
  EXPECT_LT( worst, amplitude_tolerance ) << label;
}

void expect_states_identical( const std::vector<amplitude>& a, const std::vector<amplitude>& b,
                              const std::string& label )
{
  ASSERT_EQ( a.size(), b.size() ) << label;
  EXPECT_EQ( 0, std::memcmp( a.data(), b.data(), a.size() * sizeof( amplitude ) ) ) << label;
}

} // namespace

TEST( simd_kernels, isa_query_and_override_are_consistent )
{
  engine_guard guard;
  EXPECT_TRUE( sim::isa_available( sim::isa_kind::scalar ) );
  EXPECT_TRUE( sim::isa_available( sim::detected_isa() ) );
  EXPECT_EQ( sim::set_isa( sim::isa_kind::scalar ), sim::isa_kind::scalar );
  EXPECT_EQ( sim::active_isa(), sim::isa_kind::scalar );
  EXPECT_EQ( sim::active_ops().isa, sim::isa_kind::scalar );
  /* requests beyond what the CPU/build supports clamp, never fail */
  const auto granted = sim::set_isa( sim::isa_kind::avx512 );
  EXPECT_TRUE( sim::isa_available( granted ) );
  EXPECT_EQ( sim::active_isa(), granted );
  EXPECT_EQ( sim::active_ops().isa, granted );
  for ( const auto isa : available_isas() )
  {
    EXPECT_EQ( sim::ops_for( isa ).isa, isa ) << sim::isa_name( isa );
    sim::isa_kind parsed;
    ASSERT_TRUE( sim::isa_from_name( sim::isa_name( isa ), parsed ) );
    EXPECT_EQ( parsed, isa );
  }
}

/*! Every primitive-backed kernel, applied directly to the same random
 *  state under each available ISA: results agree to 1e-12.  Qubit 0
 *  cases exercise the interleaved-pair paths, higher qubits the
 *  split-half paths, and dim = 2^9 leaves odd tails for both vector
 *  widths on the masked subranges. */
TEST( simd_kernels, kernel_primitives_agree_across_isas )
{
  engine_guard guard;
  constexpr uint64_t dim = uint64_t{ 1 } << 9;
  const auto base = random_state( dim, 42u );

  const std::array<amplitude, 4> m2x2 = {
      amplitude{ 0.6, 0.1 }, amplitude{ -0.3, 0.7 }, amplitude{ 0.2, -0.5 }, amplitude{ 0.4, 0.4 } };
  std::vector<amplitude> diag8( 8u );
  std::vector<amplitude> diag4( 4u );
  for ( uint64_t i = 0u; i < diag8.size(); ++i )
  {
    diag8[i] = std::polar( 1.0, 0.37 * static_cast<double>( i + 1u ) );
  }
  for ( uint64_t i = 0u; i < diag4.size(); ++i )
  {
    diag4[i] = std::polar( 1.0, -0.53 * static_cast<double>( i + 1u ) );
  }
  const auto dense8 = random_state( 64u, 7u );  /* 8x8 block matrix */
  const std::vector<uint32_t> contiguous{ 0u, 1u, 2u };
  const std::vector<uint32_t> scattered{ 1u, 3u, 4u };
  const std::vector<uint32_t> high_run{ 2u, 3u, 5u }; /* run of 4 -> stream path */
  const std::vector<uint32_t> diag_qubits_low{ 0u, 2u, 3u };
  const std::vector<uint32_t> diag_qubits_stretch{ 2u, 5u };

  using kernel_fn = std::function<void( amplitude*, uint64_t )>;
  const std::vector<std::pair<std::string, kernel_fn>> kernels = {
      { "1q q0", [&]( amplitude* s, uint64_t d ) { sim::apply_1q( s, d, 0u, m2x2 ); } },
      { "1q q3", [&]( amplitude* s, uint64_t d ) { sim::apply_1q( s, d, 3u, m2x2 ); } },
      { "diag q0", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_diag( s, d, 0u, { 0.8, 0.2 }, { 0.1, -0.9 } ); } },
      { "diag q2 p0=1", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_diag( s, d, 2u, { 1.0, 0.0 }, { 0.3, 0.6 } ); } },
      { "diag q4 p1=1", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_diag( s, d, 4u, { -0.2, 0.5 }, { 1.0, 0.0 } ); } },
      { "diag q5 general", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_diag( s, d, 5u, { 0.9, 0.1 }, { -0.4, 0.3 } ); } },
      { "antidiag q0", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_antidiag( s, d, 0u, { 0.0, 1.0 }, { 0.0, -1.0 } ); } },
      { "antidiag q2", [&]( amplitude* s, uint64_t d ) {
          sim::apply_1q_antidiag( s, d, 2u, { 0.5, 0.5 }, { -0.5, 0.5 } ); } },
      { "phase mask bit0", [&]( amplitude* s, uint64_t d ) {
          sim::apply_phase_masked( s, d, 0x1u, { 0.0, 1.0 } ); } },
      { "phase mask 0b101", [&]( amplitude* s, uint64_t d ) {
          sim::apply_phase_masked( s, d, 0x5u, { -0.6, 0.8 } ); } },
      { "phase mask 0b11000", [&]( amplitude* s, uint64_t d ) {
          sim::apply_phase_masked( s, d, 0x18u, { 0.7, -0.7 } ); } },
      { "mcx t0 c2", [&]( amplitude* s, uint64_t d ) { sim::apply_mcx( s, d, 0x4u, 0u ); } },
      { "mcx t3 c0", [&]( amplitude* s, uint64_t d ) { sim::apply_mcx( s, d, 0x1u, 3u ); } },
      { "x t5", [&]( amplitude* s, uint64_t d ) { sim::apply_mcx( s, d, 0x0u, 5u ); } },
      { "mc1q t0", [&]( amplitude* s, uint64_t d ) { sim::apply_mc1q( s, d, 0xau, 0u, m2x2 ); } },
      { "mc1q t4 c0", [&]( amplitude* s, uint64_t d ) { sim::apply_mc1q( s, d, 0x1u, 4u, m2x2 ); } },
      { "swap 0,3", [&]( amplitude* s, uint64_t d ) { sim::apply_swap( s, d, 0u, 3u ); } },
      { "swap 2,5", [&]( amplitude* s, uint64_t d ) { sim::apply_swap( s, d, 2u, 5u ); } },
      { "scalar", [&]( amplitude* s, uint64_t d ) { sim::apply_scalar( s, d, { 0.6, -0.8 } ); } },
      { "diag_table q{0,2,3}", [&]( amplitude* s, uint64_t d ) {
          sim::apply_diag_table( s, d, diag_qubits_low, diag8 ); } },
      { "diag_table q{2,5} stretch", [&]( amplitude* s, uint64_t d ) {
          sim::apply_diag_table( s, d, diag_qubits_stretch, diag4 ); } },
      { "fused_kq contiguous", [&]( amplitude* s, uint64_t d ) {
          sim::apply_fused_kq( s, d, contiguous, dense8 ); } },
      { "fused_kq scattered", [&]( amplitude* s, uint64_t d ) {
          sim::apply_fused_kq( s, d, scattered, dense8 ); } },
      { "fused_kq high-run", [&]( amplitude* s, uint64_t d ) {
          sim::apply_fused_kq( s, d, high_run, dense8 ); } },
  };

  for ( const auto& [label, kernel] : kernels )
  {
    sim::set_isa( sim::isa_kind::scalar );
    auto reference = base;
    kernel( reference.data(), dim );
    for ( const auto isa : available_isas() )
    {
      if ( isa == sim::isa_kind::scalar )
      {
        continue;
      }
      ASSERT_EQ( sim::set_isa( isa ), isa );
      auto state = base;
      kernel( state.data(), dim );
      expect_states_close( state, reference,
                           label + " [" + sim::isa_name( isa ) + " vs scalar]" );
    }
  }
}

/*! Full randomized circuits at qubit counts straddling the vector
 *  widths: every ISA agrees with the scalar reference, and the scalar
 *  fused path agrees with the naive gate-by-gate walk. */
TEST( simd_kernels, cross_isa_amplitudes_agree_on_random_circuits )
{
  engine_guard guard;
  for ( const uint32_t num_qubits : { 1u, 2u, 3u, 5u, 7u, 9u, 11u } )
  {
    const auto circuit = random_circuit( num_qubits, 40u * num_qubits + 20u, 1000u + num_qubits );

    sim::set_isa( sim::isa_kind::scalar );
    statevector_simulator scalar_run( num_qubits );
    scalar_run.run( circuit );
    statevector_simulator naive_run( num_qubits );
    naive_run.run_naive( circuit );
    expect_states_close( scalar_run.state(), naive_run.state(),
                         "scalar fused vs naive, n=" + std::to_string( num_qubits ) );

    for ( const auto isa : available_isas() )
    {
      if ( isa == sim::isa_kind::scalar )
      {
        continue;
      }
      ASSERT_EQ( sim::set_isa( isa ), isa );
      statevector_simulator vector_run( num_qubits );
      vector_run.run( circuit );
      expect_states_close( vector_run.state(), scalar_run.state(),
                           std::string( sim::isa_name( isa ) ) +
                               " vs scalar, n=" + std::to_string( num_qubits ) );
    }
  }
}

/*! The tile scheduler must actually produce tiled segments on a
 *  low-qubit-heavy circuit and the tiled execution must match both the
 *  naive walk and the unscheduled program, under every ISA. */
TEST( simd_kernels, tiled_schedule_matches_naive_across_isas )
{
  engine_guard guard;
  constexpr uint32_t num_qubits = 10u;
  qcircuit circuit( num_qubits );
  for ( uint32_t layer = 0u; layer < 12u; ++layer )
  {
    for ( uint32_t q = 0u; q < 4u; ++q )
    {
      circuit.h( q );
    }
    circuit.cx( 0u, 1u );
    circuit.cx( 2u, 3u );
    circuit.t( 0u );
    circuit.t( 2u );
    circuit.cx( 8u, 9u ); /* high op: forces a full-sweep segment */
    circuit.h( 7u );
  }

  sim::compile_options tiled_options;
  tiled_options.tile_qubits = 4u;
  const auto tiled_prog = sim::compile( circuit, tiled_options );
  ASSERT_FALSE( tiled_prog.segments.empty() );
  EXPECT_EQ( tiled_prog.tile_qubits, 4u );
  const bool has_tiled_segment =
      std::any_of( tiled_prog.segments.begin(), tiled_prog.segments.end(),
                   []( const sim::tile_segment& seg ) { return seg.tiled; } );
  EXPECT_TRUE( has_tiled_segment );
  uint64_t scheduled_ops = 0u;
  for ( const auto& seg : tiled_prog.segments )
  {
    scheduled_ops += seg.op_indices.size();
  }
  EXPECT_EQ( scheduled_ops, tiled_prog.ops.size() ); /* a permutation, nothing dropped */

  sim::compile_options flat_options;
  flat_options.tile_scheduling = false;
  const auto flat_prog = sim::compile( circuit, flat_options );
  EXPECT_TRUE( flat_prog.segments.empty() );

  statevector_simulator naive_run( num_qubits );
  naive_run.run_naive( circuit );

  for ( const auto isa : available_isas() )
  {
    ASSERT_EQ( sim::set_isa( isa ), isa );
    statevector_simulator tiled_run( num_qubits );
    tiled_run.run_program( tiled_prog );
    statevector_simulator flat_run( num_qubits );
    flat_run.run_program( flat_prog );
    expect_states_close( tiled_run.state(), naive_run.state(),
                         std::string( "tiled vs naive [" ) + sim::isa_name( isa ) + "]" );
    expect_states_close( tiled_run.state(), flat_run.state(),
                         std::string( "tiled vs flat [" ) + sim::isa_name( isa ) + "]" );
  }
}

/*! Within one ISA, the state after a large-dimension run (threads
 *  actually engaged, tiling engaged at the default tile size) is
 *  bit-identical for any thread count. */
TEST( simd_kernels, thread_count_bit_identity_per_isa )
{
  engine_guard guard;
  constexpr uint32_t num_qubits = 17u; /* > default 16 tile qubits and
                                        * > the parallel threshold */
  const auto circuit = random_circuit( num_qubits, 60u, 99u );
  const auto prog = sim::compile( circuit );
  EXPECT_FALSE( prog.segments.empty() ); /* tiling engages past 16 qubits */

  for ( const auto isa : available_isas() )
  {
    ASSERT_EQ( sim::set_isa( isa ), isa );
    sim::set_num_threads( 1u );
    statevector_simulator single( num_qubits );
    single.run_program( prog );
    for ( const uint32_t threads : { 2u, 8u } )
    {
      sim::set_num_threads( threads );
      statevector_simulator multi( num_qubits );
      multi.run_program( prog );
      expect_states_identical( multi.state(), single.state(),
                               std::string( sim::isa_name( isa ) ) + ", " +
                                   std::to_string( threads ) + " threads vs 1" );
    }
    sim::set_num_threads( 0u );
  }
}

/*! Sampled counts at a fixed seed are identical across thread counts
 *  and across ISAs. */
TEST( simd_kernels, sample_counts_deterministic_across_threads_and_isas )
{
  engine_guard guard;
  constexpr uint32_t num_qubits = 12u;
  auto circuit = random_circuit( num_qubits, 150u, 5u );
  for ( uint32_t q = 0u; q < 6u; ++q )
  {
    circuit.measure( q );
  }

  sim::set_isa( sim::isa_kind::scalar );
  sim::set_num_threads( 1u );
  const auto reference = sample_counts( circuit, 2000u, 7u );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : reference )
  {
    EXPECT_LT( outcome, uint64_t{ 1 } << 6 );
    total += count;
  }
  EXPECT_EQ( total, 2000u );

  for ( const auto isa : available_isas() )
  {
    ASSERT_EQ( sim::set_isa( isa ), isa );
    for ( const uint32_t threads : { 1u, 2u, 8u } )
    {
      sim::set_num_threads( threads );
      const auto counts = sample_counts( circuit, 2000u, 7u );
      EXPECT_EQ( counts, reference )
          << sim::isa_name( isa ) << ", " << threads << " threads";
    }
  }
}

} // namespace qda
