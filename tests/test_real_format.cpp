#include "reversible/real_format.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( real_format_test, writes_revlib_header )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  const auto text = write_real( circuit );
  EXPECT_NE( text.find( ".version 2.0" ), std::string::npos );
  EXPECT_NE( text.find( ".numvars 3" ), std::string::npos );
  EXPECT_NE( text.find( ".variables a b c" ), std::string::npos );
  EXPECT_NE( text.find( "t3 a b c" ), std::string::npos );
  EXPECT_NE( text.find( ".begin" ), std::string::npos );
  EXPECT_NE( text.find( ".end" ), std::string::npos );
}

TEST( real_format_test, roundtrip_preserves_semantics )
{
  for ( uint64_t seed = 0u; seed < 10u; ++seed )
  {
    const auto pi = permutation::random( 4u, seed + 600u );
    const auto circuit = transformation_based_synthesis( pi );
    const auto parsed = read_real( write_real( circuit ) );
    ASSERT_EQ( parsed.num_lines(), circuit.num_lines() );
    ASSERT_EQ( parsed.gates(), circuit.gates() ) << "seed=" << seed;
  }
}

TEST( real_format_test, negative_controls_roundtrip )
{
  rev_circuit circuit( 3u );
  circuit.add_gate( rev_gate::mct( { 0u }, { 1u }, 2u ) );
  const auto text = write_real( circuit );
  EXPECT_NE( text.find( "t3 a -b c" ), std::string::npos );
  const auto parsed = read_real( text );
  EXPECT_EQ( parsed.gates(), circuit.gates() );
}

TEST( real_format_test, parses_handwritten_revlib_file )
{
  const auto circuit = read_real( "# a RevLib-style file\n"
                                  ".version 1.0\n"
                                  ".numvars 3\n"
                                  ".variables x0 x1 x2\n"
                                  ".inputs x0 x1 x2\n"
                                  ".outputs y0 y1 y2\n"
                                  ".constants ---\n"
                                  ".garbage ---\n"
                                  ".begin\n"
                                  "t1 x0\n"
                                  "t2 x0 x1\n"
                                  "t3 -x0 x1 x2\n"
                                  ".end\n" );
  ASSERT_EQ( circuit.num_gates(), 3u );
  EXPECT_EQ( circuit.gate( 0u ), rev_gate::not_gate( 0u ) );
  EXPECT_EQ( circuit.gate( 1u ), rev_gate::cnot( 0u, 1u ) );
  EXPECT_EQ( circuit.gate( 2u ), rev_gate::mct( { 1u }, { 0u }, 2u ) );
}

TEST( real_format_test, default_variable_names_when_missing )
{
  const auto circuit = read_real( ".numvars 2\n.begin\nt2 a b\n.end\n" );
  ASSERT_EQ( circuit.num_gates(), 1u );
  EXPECT_EQ( circuit.gate( 0u ), rev_gate::cnot( 0u, 1u ) );
}

TEST( real_format_test, rejects_malformed_input )
{
  EXPECT_THROW( read_real( ".begin\nt1 a\n.end\n" ), std::invalid_argument );
  EXPECT_THROW( read_real( ".numvars 2\n.begin\nt2 a q\n.end\n" ), std::invalid_argument );
  EXPECT_THROW( read_real( ".numvars 2\n.begin\nt3 a b\n.end\n" ), std::invalid_argument );
  EXPECT_THROW( read_real( ".numvars 2\n.begin\nf2 a b\n.end\n" ), std::invalid_argument );
  EXPECT_THROW( read_real( ".numvars 2\n.begin\nt2 a -b\n.end\n" ), std::invalid_argument );
  EXPECT_THROW( read_real( ".numvars 0\n" ), std::invalid_argument );
}

TEST( real_format_test, benchmark_circuit_roundtrip )
{
  const auto circuit = transformation_based_synthesis( hwb_permutation( 5u ) );
  const auto parsed = read_real( write_real( circuit ) );
  EXPECT_TRUE( equivalent( parsed, circuit ) );
}

} // namespace
} // namespace qda
