#include "core/flow.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/pass_registry.hpp"
#include "pipeline/spec_parser.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

constexpr const char* eq5 = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps";

/* ---------------- spec parser ---------------- */

TEST( spec_parser_test, parses_eq5_command_string )
{
  const auto spec = parse_pipeline( "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c" );
  ASSERT_EQ( spec.size(), 6u );
  EXPECT_EQ( spec.passes[0].name, "revgen" );
  EXPECT_EQ( spec.passes[0].args.option( "hwb" ).value_or( "" ), "4" );
  EXPECT_EQ( spec.passes[1].name, "tbs" );
  EXPECT_EQ( spec.passes[4].name, "tpar" );
  EXPECT_EQ( spec.passes[5].name, "ps" );
  EXPECT_TRUE( spec.passes[5].args.has_flag( "c" ) );
}

TEST( spec_parser_test, round_trips_canonical_form )
{
  const auto text = "revgen --hwb 4;  tbs ;revsimp; rptm; tpar;; ps -c";
  const auto spec = parse_pipeline( text );
  const auto canonical = spec.to_string();
  EXPECT_EQ( canonical, "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c" );
  /* parsing the canonical form is a fixed point */
  EXPECT_EQ( parse_pipeline( canonical ).to_string(), canonical );
}

TEST( spec_parser_test, skips_empty_commands_and_newlines )
{
  const auto spec = parse_pipeline( "revgen --hwb 3\n tbs\n\n; rptm;" );
  ASSERT_EQ( spec.size(), 3u );
  EXPECT_EQ( spec.passes[2].name, "rptm" );
}

TEST( spec_parser_test, rejects_invalid_pass_name )
{
  EXPECT_THROW( parse_pipeline( "rev!gen --hwb 4" ), std::invalid_argument );
  EXPECT_THROW( parse_pipeline( "--hwb 4" ), std::invalid_argument );
}

TEST( spec_parser_test, rejects_empty_option_name )
{
  EXPECT_THROW( parse_pipeline( "revgen -- 4" ), std::invalid_argument );
}

TEST( spec_parser_test, long_flags_and_options_distinguished )
{
  const auto spec = parse_pipeline( "tbs --bidirectional; rptm --no-relative-phase" );
  EXPECT_TRUE( spec.passes[0].args.has_flag( "bidirectional" ) );
  EXPECT_TRUE( spec.passes[1].args.has_flag( "no-relative-phase" ) );
  EXPECT_FALSE( spec.passes[1].args.has_option( "no-relative-phase" ) );
}

/* ---------------- validation ---------------- */

TEST( spec_validation_test, unknown_pass_name_is_rejected )
{
  const auto spec = parse_pipeline( "revgen --hwb 4; frobnicate" );
  EXPECT_THROW( validate_pipeline( spec ), std::invalid_argument );
}

TEST( spec_validation_test, wrong_stage_invocation_is_rejected )
{
  /* tbs needs a permutation */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "tbs" ) ), std::logic_error );
  /* rptm before synthesis */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 3; rptm" ) ),
                std::logic_error );
  /* tpar before rptm */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 3; tbs; tpar" ) ),
                std::logic_error );
  /* ps before any circuit */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 3; ps" ) ),
                std::logic_error );
}

TEST( spec_validation_test, malformed_arguments_are_rejected )
{
  /* non-numeric value */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb four; tbs" ) ),
                std::invalid_argument );
  /* unknown argument for the pass */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 4; tbs --frob 3" ) ),
                std::invalid_argument );
  /* option used as flag (missing value) */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb" ) ),
                std::invalid_argument );
  /* stray positional argument */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 4; tbs now" ) ),
                std::invalid_argument );
  /* repeated option */
  EXPECT_THROW( validate_pipeline( parse_pipeline( "revgen --hwb 4 --hwb 5; tbs" ) ),
                std::invalid_argument );
}

TEST( spec_validation_test, revgen_requires_exactly_one_generator )
{
  pass_manager manager( /*enable_cache=*/false );
  EXPECT_THROW( manager.run( "revgen" ), std::invalid_argument );
  EXPECT_THROW( manager.run( "revgen --hwb 4 --gray 3" ), std::invalid_argument );
}

TEST( spec_validation_test, reports_final_stage )
{
  EXPECT_EQ( validate_pipeline( parse_pipeline( "revgen --hwb 4" ) ), stage::permutation );
  EXPECT_EQ( validate_pipeline( parse_pipeline( "revgen --hwb 4; tbs" ) ), stage::reversible );
  EXPECT_EQ( validate_pipeline( parse_pipeline( eq5 ) ), stage::quantum );
  EXPECT_EQ( validate_pipeline(
                 parse_pipeline( "revgen --hwb 4; tbs; rptm; route --device ibm_qx4" ) ),
             stage::mapped );
}

/* ---------------- pass registry ---------------- */

TEST( pass_registry_test, builtin_passes_are_registered )
{
  auto& registry = pass_registry::instance();
  for ( const char* name :
        { "revgen", "tbs", "dbs", "revsimp", "rptm", "tpar", "peephole", "route", "ps" } )
  {
    EXPECT_TRUE( registry.contains( name ) ) << name;
  }
  EXPECT_THROW( registry.at( "nope" ), std::invalid_argument );
}

TEST( pass_registry_test, duplicate_registration_is_rejected )
{
  pass_registry registry;
  register_builtin_passes( registry );
  pass_info duplicate;
  duplicate.name = "tbs";
  duplicate.accepts = { stage::permutation };
  duplicate.produces = stage::reversible;
  duplicate.run = []( staged_ir&, const pass_arguments&, const pass_context& ) {};
  EXPECT_THROW( registry.register_pass( std::move( duplicate ) ), std::invalid_argument );
}

TEST( pass_registry_test, custom_pass_participates_in_pipelines )
{
  pass_registry registry;
  register_builtin_passes( registry );
  pass_info reverse_pass;
  reverse_pass.name = "reverse";
  reverse_pass.summary = "replace the reversible circuit by its inverse";
  reverse_pass.accepts = { stage::reversible };
  reverse_pass.produces = stage::reversible;
  reverse_pass.run = []( staged_ir& ir, const pass_arguments&, const pass_context& ) {
    ir.set_reversible( ir.require_reversible().inverse() );
  };
  registry.register_pass( std::move( reverse_pass ) );

  pass_manager manager( /*enable_cache=*/false, registry );
  const auto result = manager.run( "revgen --hwb 3; tbs; reverse; reverse" );
  EXPECT_EQ( result.ir.require_reversible().to_permutation(),
             hwb_permutation( 3u ) );
}

/* ---------------- pass manager ---------------- */

TEST( pass_manager_test, eq5_matches_fluent_flow )
{
  flow fluent;
  const auto fluent_stats = fluent.revgen_hwb( 4u ).tbs().revsimp().rptm().tpar().ps();

  pass_manager manager;
  const auto result = manager.run( eq5 );

  ASSERT_TRUE( result.ir.last_statistics.has_value() );
  const auto& stats = *result.ir.last_statistics;
  EXPECT_EQ( stats.num_qubits, fluent_stats.num_qubits );
  EXPECT_EQ( stats.num_gates, fluent_stats.num_gates );
  EXPECT_EQ( stats.t_count, fluent_stats.t_count );
  EXPECT_EQ( stats.t_depth, fluent_stats.t_depth );
  EXPECT_EQ( stats.cnot_count, fluent_stats.cnot_count );
  EXPECT_EQ( stats.h_count, fluent_stats.h_count );
  EXPECT_EQ( stats.depth, fluent_stats.depth );

  /* the compiled circuit still implements hwb-4 */
  const auto& target = result.ir.require_permutation();
  EXPECT_TRUE( circuit_implements_permutation_with_helpers(
      result.ir.require_quantum().circuit, target.num_vars(), target.images(),
      /*up_to_phase=*/true ) );
}

TEST( pass_manager_test, per_pass_reports_are_recorded )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto result = manager.run( eq5 );
  ASSERT_EQ( result.reports.size(), 6u );
  EXPECT_EQ( result.reports[0].name, "revgen" );
  EXPECT_EQ( result.reports[0].stage_before, stage::empty );
  EXPECT_EQ( result.reports[0].stage_after, stage::permutation );
  EXPECT_EQ( result.reports[1].stage_after, stage::reversible );
  EXPECT_GT( result.reports[1].gates_after, 0u );
  /* revsimp must not grow the circuit */
  EXPECT_LE( result.reports[2].gates_after, result.reports[2].gates_before );
  EXPECT_EQ( result.reports[3].stage_after, stage::quantum );
  ASSERT_TRUE( result.reports[4].statistics_after.has_value() );
  /* tpar must not raise T-count */
  ASSERT_TRUE( result.reports[4].statistics_before.has_value() );
  EXPECT_LE( result.reports[4].statistics_after->t_count,
             result.reports[4].statistics_before->t_count );
  for ( const auto& report : result.reports )
  {
    EXPECT_GE( report.elapsed_ms, 0.0 );
  }
  EXPECT_FALSE( format_report( result ).empty() );
}

TEST( pass_manager_test, tpar_fold_only_keeps_t_count_but_more_cnots )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto fold_only =
      manager.run( "revgen --hwb 5; tbs; revsimp; rptm; tpar --fold-only; ps" );
  const auto full = manager.run( "revgen --hwb 5; tbs; revsimp; rptm; tpar; ps" );
  ASSERT_TRUE( fold_only.ir.quantum.has_value() );
  ASSERT_TRUE( full.ir.quantum.has_value() );
  const auto stats_fold = compute_statistics( fold_only.ir.quantum->circuit );
  const auto stats_full = compute_statistics( full.ir.quantum->circuit );
  /* resynthesis must not cost T gates and should not add CNOTs */
  EXPECT_LE( stats_full.t_count, stats_fold.t_count );
  EXPECT_LE( stats_full.cnot_count, stats_fold.cnot_count );
  /* --no-resynth is an alias for --fold-only */
  const auto alias =
      manager.run( "revgen --hwb 5; tbs; revsimp; rptm; tpar --no-resynth; ps" );
  ASSERT_TRUE( alias.ir.quantum.has_value() );
  EXPECT_TRUE( alias.ir.quantum->circuit == fold_only.ir.quantum->circuit );
}

TEST( pass_manager_test, second_identical_run_hits_cache )
{
  pass_manager manager;
  const auto first = manager.run( eq5 );
  EXPECT_FALSE( first.cache_hit );
  const auto second = manager.run( eq5 );
  EXPECT_TRUE( second.cache_hit );
  EXPECT_EQ( second.cache_key, first.cache_key );
  const auto stats = manager.cache_stats();
  EXPECT_EQ( stats.hits, 1u );
  EXPECT_EQ( stats.misses, 1u );
  EXPECT_EQ( stats.entries, 1u );

  /* the cached result is the same compilation */
  ASSERT_TRUE( second.ir.last_statistics.has_value() );
  EXPECT_EQ( second.ir.last_statistics->t_count, first.ir.last_statistics->t_count );
  EXPECT_EQ( second.ir.require_quantum().circuit.num_gates(),
             first.ir.require_quantum().circuit.num_gates() );
}

TEST( pass_manager_test, different_specs_use_different_cache_entries )
{
  pass_manager manager;
  const auto a = manager.run( "revgen --hwb 4; tbs; rptm" );
  const auto b = manager.run( "revgen --hwb 4; tbs --bidirectional; rptm" );
  EXPECT_NE( a.cache_key, b.cache_key );
  EXPECT_FALSE( b.cache_hit );
  manager.clear_cache();
  EXPECT_EQ( manager.cache_stats().entries, 0u );
  EXPECT_FALSE( manager.run( "revgen --hwb 4; tbs; rptm" ).cache_hit );
}

TEST( pass_manager_test, cache_key_depends_on_initial_ir )
{
  staged_ir a;
  a.set_permutation( permutation::random( 4u, 1u ) );
  staged_ir b;
  b.set_permutation( permutation::random( 4u, 2u ) );
  const auto spec = parse_pipeline( "tbs; rptm" );
  EXPECT_NE( pass_manager::compute_cache_key( spec, a ),
             pass_manager::compute_cache_key( spec, b ) );

  pass_manager manager;
  const auto result = manager.run( spec, a );
  EXPECT_FALSE( result.cache_hit );
  EXPECT_TRUE( manager.run( spec, a ).cache_hit );
  EXPECT_FALSE( manager.run( spec, b ).cache_hit );
}

TEST( pass_manager_test, cache_is_bounded_with_lru_eviction )
{
  pass_manager manager( /*enable_cache=*/true, pass_registry::instance(),
                        /*max_cache_entries=*/2u );
  manager.run( "revgen --hwb 3; tbs" );
  manager.run( "revgen --hwb 4; tbs" );
  EXPECT_EQ( manager.cache_stats().evictions, 0u );

  /* touching hwb-3 refreshes its recency, so inserting hwb-5 evicts
   * hwb-4 (FIFO would evict hwb-3, the oldest insertion) */
  EXPECT_TRUE( manager.run( "revgen --hwb 3; tbs" ).cache_hit );
  manager.run( "revgen --hwb 5; tbs" );
  EXPECT_EQ( manager.cache_stats().evictions, 1u );
  EXPECT_EQ( manager.cache_stats().entries, 2u );

  EXPECT_TRUE( manager.run( "revgen --hwb 3; tbs" ).cache_hit );
  EXPECT_FALSE( manager.run( "revgen --hwb 4; tbs" ).cache_hit ); /* evicts hwb-5 */
  EXPECT_EQ( manager.cache_stats().evictions, 2u );
  EXPECT_EQ( manager.cache_stats().entries, 2u );
}

TEST( spec_parser_test, canonicalizes_flag_and_option_order )
{
  /* parsing is registry-independent, so canonicalization is testable
   * with a made-up vocabulary */
  const auto a = parse_pipeline( "foo -b -a --zeta 1 --eta 2 pos1 pos2" );
  const auto b = parse_pipeline( "foo --eta 2 -a --zeta 1 -b pos1 pos2" );
  EXPECT_EQ( a.to_string(), b.to_string() );
  /* positionals keep their order */
  EXPECT_EQ( a.passes[0].args.positional(), b.passes[0].args.positional() );
}

TEST( spec_parser_test, equivalent_spellings_share_structural_keys )
{
  const auto clean = parse_pipeline( "revgen --hwb 4; tbs; rptm" );
  const auto messy = parse_pipeline( " revgen  --hwb 4 ;; tbs ;\n rptm " );
  EXPECT_EQ( clean.to_string(), messy.to_string() );
  EXPECT_EQ( compute_structural_key( clean, staged_ir{} ),
             compute_structural_key( messy, staged_ir{} ) );
  /* ...so equivalent spellings dedup to one cache entry */
  pass_manager manager;
  EXPECT_FALSE( manager.run( clean ).cache_hit );
  EXPECT_TRUE( manager.run( messy ).cache_hit );
  EXPECT_EQ( manager.cache_stats().entries, 1u );
}

TEST( pass_manager_test, resumes_from_mid_pipeline_snapshot )
{
  const auto spec = parse_pipeline( eq5 );
  pass_manager manager( /*enable_cache=*/false );

  /* harvest the IR after pass 2 (revsimp) through the observer */
  staged_ir snapshot;
  std::vector<pass_report> snapshot_reports;
  run_plan cold;
  const auto observer = [&]( size_t pass_index, const staged_ir& ir,
                             const std::vector<pass_report>& reports ) {
    if ( pass_index == 2u )
    {
      snapshot = ir;
      snapshot_reports = reports;
    }
  };
  const auto full = manager.run( spec, staged_ir{}, cold, observer );
  ASSERT_EQ( snapshot_reports.size(), 3u );

  run_plan plan;
  plan.first_pass = 3u;
  plan.prefix_reports = snapshot_reports;
  plan.cache_key = compute_structural_key( spec, staged_ir{} );
  const auto resumed = manager.run( spec, std::move( snapshot ), plan );

  EXPECT_EQ( resumed.reused_passes, 3u );
  ASSERT_EQ( resumed.reports.size(), full.reports.size() );
  EXPECT_TRUE( resumed.reports[0].reused );
  EXPECT_TRUE( resumed.reports[2].reused );
  EXPECT_FALSE( resumed.reports[3].reused );
  ASSERT_TRUE( resumed.ir.last_statistics.has_value() );
  EXPECT_EQ( resumed.ir.last_statistics->t_count, full.ir.last_statistics->t_count );
  EXPECT_TRUE( resumed.ir.require_quantum().circuit == full.ir.require_quantum().circuit );
}

TEST( pass_manager_test, resume_plan_requires_cache_key )
{
  const auto spec = parse_pipeline( "revgen --hwb 3; tbs" );
  pass_manager manager( /*enable_cache=*/false );
  run_plan plan;
  plan.first_pass = 1u; /* but no cache_key override */
  staged_ir initial;
  initial.set_permutation( permutation::random( 3u, 7u ) );
  EXPECT_THROW( manager.run( spec, std::move( initial ), plan ), std::logic_error );

  run_plan beyond;
  beyond.first_pass = 3u; /* past the end of a 2-pass spec */
  beyond.cache_key = compute_structural_key( spec, staged_ir{} );
  EXPECT_THROW( manager.run( spec, staged_ir{}, beyond ), std::logic_error );
}

TEST( pass_manager_test, disabled_cache_never_hits )
{
  pass_manager manager( /*enable_cache=*/false );
  EXPECT_FALSE( manager.run( eq5 ).cache_hit );
  EXPECT_FALSE( manager.run( eq5 ).cache_hit );
  EXPECT_EQ( manager.cache_stats().hits, 0u );
  EXPECT_EQ( manager.cache_stats().misses, 0u );
}

TEST( pass_manager_test, route_pass_produces_mapped_stage )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto result =
      manager.run( "revgen --hwb 4; tbs; revsimp; rptm; tpar; route --device ibm_qx4; ps" );
  EXPECT_EQ( result.ir.current, stage::mapped );
  const auto& mapped = result.ir.require_mapped();
  EXPECT_EQ( mapped.circuit.num_qubits(), 5u );
  ASSERT_TRUE( result.ir.last_statistics.has_value() );
  /* routed statistics reflect the device circuit, not the logical one */
  EXPECT_EQ( result.ir.last_statistics->num_gates,
             compute_statistics( mapped.circuit ).num_gates );
  EXPECT_GE( result.ir.last_statistics->num_gates,
             compute_statistics( result.ir.require_quantum().circuit ).num_gates );
  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm; route --device mars" ),
                std::invalid_argument );
  /* conflicting topologies must not silently pick one */
  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm; route --device ibm_qx5 --linear 3" ),
                std::invalid_argument );
}

TEST( pass_manager_test, stage_errors_surface_as_logic_error )
{
  staged_ir ir;
  EXPECT_THROW( pass_manager::apply_pass( ir, "tbs" ), std::logic_error );
  pass_arguments args;
  args.add_option( "hwb", "3" );
  pass_manager::apply_pass( ir, "revgen", args );
  EXPECT_EQ( ir.current, stage::permutation );
  EXPECT_THROW( pass_manager::apply_pass( ir, "tpar" ), std::logic_error );
}

/* ---------------- flow shim ---------------- */

TEST( flow_shim_test, fluent_flow_records_pass_reports )
{
  flow pipeline;
  pipeline.revgen_hwb( 4u ).tbs().revsimp().rptm().tpar();
  ASSERT_EQ( pipeline.reports().size(), 5u );
  EXPECT_EQ( pipeline.reports()[1].name, "tbs" );
  EXPECT_EQ( pipeline.reports()[4].stage_after, stage::quantum );
  EXPECT_EQ( pipeline.ir().current, stage::quantum );
}

TEST( mapping_flags_test, rptm_strategy_and_cost_target )
{
  pass_manager manager( /*enable_cache=*/false );
  /* forcing the clean chain reproduces the default T-count */
  const auto clean = manager.run( "revgen --hwb 4; tbs; rptm --strategy clean; ps" );
  const auto automatic = manager.run( "revgen --hwb 4; tbs; rptm --strategy auto; ps" );
  ASSERT_TRUE( clean.ir.last_statistics && automatic.ir.last_statistics );
  EXPECT_EQ( clean.ir.last_statistics->t_count, automatic.ir.last_statistics->t_count );

  /* deriving the cost model from a device target caps the qubit budget */
  const auto device_mapped =
      manager.run( "revgen --hwb 4; tbs; rptm --cost-target ibm_qx4; ps" );
  ASSERT_TRUE( device_mapped.ir.last_statistics );
  EXPECT_LE( device_mapped.ir.last_statistics->num_qubits, 5u );

  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm --strategy vchain" ),
                std::invalid_argument );
  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm --cost-target nope" ),
                std::invalid_argument );
}

TEST( mapping_flags_test, route_router_selection )
{
  pass_manager manager( /*enable_cache=*/false );
  const auto greedy = manager.run(
      "revgen --hwb 4; tbs; rptm; route --device ibm_qx5 --router greedy" );
  const auto sabre = manager.run(
      "revgen --hwb 4; tbs; rptm; route --device ibm_qx5 --router sabre" );
  ASSERT_TRUE( greedy.ir.mapped && sabre.ir.mapped );
  EXPECT_LE( sabre.ir.mapped->added_swaps, greedy.ir.mapped->added_swaps );
  EXPECT_NO_THROW( manager.run(
      "revgen --hwb 4; tbs; rptm; route --router sabre --lookahead 8 --layout-trials 1" ) );

  /* default router is sabre */
  const auto defaulted = manager.run( "revgen --hwb 4; tbs; rptm; route --device ibm_qx5" );
  ASSERT_TRUE( defaulted.ir.mapped );
  EXPECT_EQ( defaulted.ir.mapped->added_swaps, sabre.ir.mapped->added_swaps );

  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm; route --router tokyo" ),
                std::invalid_argument );
  EXPECT_THROW( manager.run( "revgen --hwb 4; tbs; rptm; route --lookahead x" ),
                std::invalid_argument );
}

TEST( mapping_flags_test, flow_route_and_strategy_shims )
{
  flow pipeline;
  pipeline.revgen_hwb( 4u ).tbs().rptm_strategy( "clean", "statevector" ).route( "ibm_qx4" );
  EXPECT_EQ( pipeline.ir().current, stage::mapped );
  const auto& mapped = pipeline.mapped();
  EXPECT_EQ( mapped.circuit.num_qubits(), 5u );
  EXPECT_EQ( mapped.initial_layout.size(), 5u );
}

TEST( flow_shim_test, flow_and_spec_pipeline_agree_on_random_permutation )
{
  const auto target = permutation::random( 4u, 99u );

  flow fluent;
  fluent.revgen( target ).tbs().revsimp().rptm().tpar();

  staged_ir initial;
  initial.set_permutation( target );
  pass_manager manager( /*enable_cache=*/false );
  const auto result = manager.run( parse_pipeline( "tbs; revsimp; rptm; tpar" ), initial );

  EXPECT_EQ( result.ir.require_quantum().circuit.num_gates(),
             fluent.quantum().num_gates() );
  EXPECT_TRUE( fluent.verify() );
}

} // namespace
} // namespace qda
