#include "core/bernstein_vazirani.hpp"
#include "core/hidden_shift.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( stabilizer_test, fresh_state_measures_zero )
{
  stabilizer_simulator sim( 4u );
  for ( uint32_t q = 0u; q < 4u; ++q )
  {
    EXPECT_TRUE( sim.is_deterministic( q ) );
    EXPECT_FALSE( sim.measure( q ) );
  }
}

TEST( stabilizer_test, x_flips_measurement )
{
  stabilizer_simulator sim( 3u );
  sim.apply_x( 1u );
  EXPECT_FALSE( sim.measure( 0u ) );
  EXPECT_TRUE( sim.measure( 1u ) );
  EXPECT_FALSE( sim.measure( 2u ) );
}

TEST( stabilizer_test, hadamard_gives_random_outcomes )
{
  uint32_t ones = 0u;
  for ( uint64_t seed = 0u; seed < 64u; ++seed )
  {
    stabilizer_simulator sim( 1u, seed );
    sim.apply_h( 0u );
    EXPECT_FALSE( sim.is_deterministic( 0u ) );
    if ( sim.measure( 0u ) )
    {
      ++ones;
    }
    /* post-measurement the state is collapsed and deterministic */
    EXPECT_TRUE( sim.is_deterministic( 0u ) );
  }
  EXPECT_GT( ones, 16u );
  EXPECT_LT( ones, 48u );
}

TEST( stabilizer_test, bell_pair_is_correlated )
{
  for ( uint64_t seed = 0u; seed < 32u; ++seed )
  {
    stabilizer_simulator sim( 2u, seed );
    sim.apply_h( 0u );
    sim.apply_cx( 0u, 1u );
    const bool first = sim.measure( 0u );
    const bool second = sim.measure( 1u );
    EXPECT_EQ( first, second ) << "seed=" << seed;
  }
}

TEST( stabilizer_test, hzh_equals_x )
{
  stabilizer_simulator sim( 1u );
  sim.apply_h( 0u );
  sim.apply_z( 0u );
  sim.apply_h( 0u );
  EXPECT_TRUE( sim.is_deterministic( 0u ) );
  EXPECT_TRUE( sim.measure( 0u ) );
}

TEST( stabilizer_test, s_squared_is_z )
{
  /* H S S H |0> = H Z H |0> = |1> */
  stabilizer_simulator sim( 1u );
  sim.apply_h( 0u );
  sim.apply_s( 0u );
  sim.apply_s( 0u );
  sim.apply_h( 0u );
  EXPECT_TRUE( sim.measure( 0u ) );

  /* sdg inverts s: H S Sdg H |0> = |0> */
  stabilizer_simulator sim2( 1u );
  sim2.apply_h( 0u );
  sim2.apply_s( 0u );
  sim2.apply_sdg( 0u );
  sim2.apply_h( 0u );
  EXPECT_FALSE( sim2.measure( 0u ) );
}

TEST( stabilizer_test, swap_moves_excitation )
{
  stabilizer_simulator sim( 3u );
  sim.apply_x( 0u );
  sim.apply_swap( 0u, 2u );
  EXPECT_FALSE( sim.measure( 0u ) );
  EXPECT_TRUE( sim.measure( 2u ) );
}

TEST( stabilizer_test, rejects_non_clifford_gates )
{
  stabilizer_simulator sim( 1u );
  qgate t;
  t.kind = gate_kind::t;
  EXPECT_THROW( sim.apply_gate( t ), std::invalid_argument );
}

TEST( stabilizer_test, agrees_with_statevector_on_random_clifford_circuits )
{
  std::mt19937_64 rng( 33u );
  for ( uint32_t trial = 0u; trial < 25u; ++trial )
  {
    qcircuit circuit( 4u );
    for ( uint32_t g = 0u; g < 30u; ++g )
    {
      const uint32_t q = rng() % 4u;
      switch ( rng() % 6u )
      {
      case 0u: circuit.h( q ); break;
      case 1u: circuit.s( q ); break;
      case 2u: circuit.x( q ); break;
      case 3u: circuit.z( q ); break;
      case 4u: circuit.cx( q, ( q + 1u ) % 4u ); break;
      default: circuit.cz( q, ( q + 2u ) % 4u ); break;
      }
    }
    /* compare the induced outcome distribution on a full measurement:
     * statevector probabilities vs stabilizer sampling frequencies */
    statevector_simulator sv( 4u );
    sv.run( circuit );
    const auto probabilities = sv.probabilities();

    qcircuit measured = circuit;
    measured.measure_all();
    const auto counts = stabilizer_sample_counts( measured, 512u, trial );
    for ( const auto& [outcome, count] : counts )
    {
      ASSERT_GT( probabilities[outcome], 1e-9 )
          << "trial=" << trial << ": stabilizer produced impossible outcome " << outcome;
    }
    /* every high-probability outcome must be hit */
    for ( uint64_t basis = 0u; basis < probabilities.size(); ++basis )
    {
      if ( probabilities[basis] > 0.2 )
      {
        ASSERT_TRUE( counts.count( basis ) )
            << "trial=" << trial << ": outcome " << basis << " never sampled";
      }
    }
  }
}

TEST( stabilizer_test, deterministic_outcomes_match_statevector )
{
  std::mt19937_64 rng( 44u );
  for ( uint32_t trial = 0u; trial < 25u; ++trial )
  {
    /* classical reversible circuits (X, CX, CZ-free) have deterministic
     * outcomes; both backends must agree exactly */
    qcircuit circuit( 5u );
    for ( uint32_t g = 0u; g < 20u; ++g )
    {
      const uint32_t q = rng() % 5u;
      if ( rng() & 1u )
      {
        circuit.x( q );
      }
      else
      {
        circuit.cx( q, ( q + 1u + rng() % 4u ) % 5u );
      }
    }
    circuit.measure_all();

    statevector_simulator sv( 5u );
    sv.run( circuit );
    stabilizer_simulator st( 5u );
    st.run( circuit );
    ASSERT_EQ( sv.measurement_record().size(), st.measurement_record().size() );
    for ( size_t i = 0u; i < sv.measurement_record().size(); ++i )
    {
      ASSERT_EQ( sv.measurement_record()[i], st.measurement_record()[i] ) << "trial=" << trial;
    }
  }
}

TEST( stabilizer_test, large_ghz_state )
{
  constexpr uint32_t n = 128u;
  stabilizer_simulator sim( n, 5u );
  sim.apply_h( 0u );
  for ( uint32_t q = 1u; q < n; ++q )
  {
    sim.apply_cx( q - 1u, q );
  }
  const bool first = sim.measure( 0u );
  for ( uint32_t q = 1u; q < n; ++q )
  {
    ASSERT_EQ( sim.measure( q ), first ) << "q=" << q;
  }
}

TEST( clifford_hidden_shift_test, statevector_and_stabilizer_agree )
{
  std::vector<bool> shift{ true, false, true, true, false, false };
  const auto circuit = clifford_hidden_shift_circuit( 3u, shift );
  /* statevector */
  EXPECT_EQ( solve_hidden_shift( circuit ), 0b001101u );
  /* stabilizer */
  EXPECT_EQ( solve_hidden_shift_stabilizer( circuit ), shift );
}

TEST( clifford_hidden_shift_test, large_instance_on_stabilizer_backend )
{
  constexpr uint32_t half = 50u; /* 100 qubits: far beyond statevector reach */
  std::vector<bool> shift( 2u * half );
  std::mt19937_64 rng( 9u );
  for ( auto&& bit : shift )
  {
    bit = ( rng() & 1u ) != 0u;
  }
  const auto circuit = clifford_hidden_shift_circuit( half, shift );
  EXPECT_EQ( circuit.num_qubits(), 100u );
  EXPECT_EQ( solve_hidden_shift_stabilizer( circuit ), shift );
}

TEST( clifford_hidden_shift_test, shift_length_validated )
{
  EXPECT_THROW( clifford_hidden_shift_circuit( 3u, std::vector<bool>( 5u ) ),
                std::invalid_argument );
}

TEST( bernstein_vazirani_test, recovers_secret_statevector )
{
  for ( const uint64_t secret : { 0ull, 1ull, 0b1011ull, 0b11111ull } )
  {
    EXPECT_EQ( solve_bernstein_vazirani( 5u, secret ), secret );
  }
}

TEST( bernstein_vazirani_test, recovers_secret_stabilizer_at_scale )
{
  std::mt19937_64 rng( 7u );
  const uint64_t secret = rng(); /* 64-bit secret on 64 qubits */
  EXPECT_EQ( solve_bernstein_vazirani_stabilizer( 64u, secret ), secret );
}

TEST( bernstein_vazirani_test, validates_secret_range )
{
  EXPECT_THROW( bernstein_vazirani_circuit( 3u, 8u ), std::invalid_argument );
}

} // namespace
} // namespace qda
