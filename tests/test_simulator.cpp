#include "simulator/noise.hpp"
#include "simulator/statevector.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qda
{
namespace
{

constexpr double tolerance = 1e-12;

TEST( statevector_test, initial_state )
{
  statevector_simulator simulator( 3u );
  EXPECT_DOUBLE_EQ( simulator.probability_of( 0u ), 1.0 );
  EXPECT_NEAR( simulator.norm(), 1.0, tolerance );
}

TEST( statevector_test, hadamard_uniform_superposition )
{
  statevector_simulator simulator( 2u );
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.h( 1u );
  simulator.run( circuit );
  for ( uint64_t basis = 0u; basis < 4u; ++basis )
  {
    EXPECT_NEAR( simulator.probability_of( basis ), 0.25, tolerance );
  }
}

TEST( statevector_test, fig1a_entangler )
{
  /* paper Fig. 1(a): H then CNOT creates (|00> + |11>)/sqrt(2) */
  statevector_simulator simulator( 2u );
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  simulator.run( circuit );
  EXPECT_NEAR( simulator.probability_of( 0b00u ), 0.5, tolerance );
  EXPECT_NEAR( simulator.probability_of( 0b11u ), 0.5, tolerance );
  EXPECT_NEAR( simulator.probability_of( 0b01u ), 0.0, tolerance );
  EXPECT_NEAR( simulator.probability_of( 0b10u ), 0.0, tolerance );
}

TEST( statevector_test, x_and_cx_permute_basis )
{
  statevector_simulator simulator( 3u );
  qcircuit circuit( 3u );
  circuit.x( 0u );
  circuit.cx( 0u, 2u );
  simulator.run( circuit );
  EXPECT_NEAR( simulator.probability_of( 0b101u ), 1.0, tolerance );
}

TEST( statevector_test, gate_algebra_identities )
{
  /* H^2 = I, S = T^2, Z = S^2, X = HZH */
  qcircuit hh( 1u );
  hh.h( 0u );
  hh.h( 0u );
  EXPECT_TRUE( circuits_equivalent( hh, qcircuit( 1u ) ) );

  qcircuit tt( 1u );
  tt.t( 0u );
  tt.t( 0u );
  qcircuit s_gate( 1u );
  s_gate.s( 0u );
  EXPECT_TRUE( circuits_equivalent( tt, s_gate ) );

  qcircuit ss( 1u );
  ss.s( 0u );
  ss.s( 0u );
  qcircuit z_gate( 1u );
  z_gate.z( 0u );
  EXPECT_TRUE( circuits_equivalent( ss, z_gate ) );

  qcircuit hzh( 1u );
  hzh.h( 0u );
  hzh.z( 0u );
  hzh.h( 0u );
  qcircuit x_gate( 1u );
  x_gate.x( 0u );
  EXPECT_TRUE( circuits_equivalent( hzh, x_gate ) );
}

TEST( statevector_test, rotation_limits )
{
  /* rz(pi) == Z up to global phase */
  qcircuit rz_pi( 1u );
  rz_pi.rz( 0u, std::numbers::pi );
  qcircuit z_gate( 1u );
  z_gate.z( 0u );
  EXPECT_TRUE( circuits_equivalent( rz_pi, z_gate ) );

  qcircuit rx_pi( 1u );
  rx_pi.rx( 0u, std::numbers::pi );
  qcircuit x_gate( 1u );
  x_gate.x( 0u );
  EXPECT_TRUE( circuits_equivalent( rx_pi, x_gate ) );
}

TEST( statevector_test, swap_gate )
{
  qcircuit circuit( 2u );
  circuit.x( 0u );
  circuit.swap_( 0u, 1u );
  statevector_simulator simulator( 2u );
  simulator.run( circuit );
  EXPECT_NEAR( simulator.probability_of( 0b10u ), 1.0, tolerance );
}

TEST( statevector_test, mcz_phases_only_all_ones )
{
  qcircuit circuit( 3u );
  for ( uint32_t q = 0u; q < 3u; ++q )
  {
    circuit.h( q );
  }
  circuit.mcz( { 0u, 1u }, 2u );
  statevector_simulator simulator( 3u );
  simulator.run( circuit );
  const auto& state = simulator.state();
  for ( uint64_t basis = 0u; basis < 8u; ++basis )
  {
    const double expected_sign = basis == 0b111u ? -1.0 : 1.0;
    EXPECT_NEAR( state[basis].real(), expected_sign / std::sqrt( 8.0 ), 1e-9 ) << basis;
  }
}

TEST( statevector_test, norm_preserved_by_random_circuit )
{
  qcircuit circuit( 5u );
  std::mt19937_64 rng( 11u );
  for ( uint32_t i = 0u; i < 100u; ++i )
  {
    const uint32_t q = rng() % 5u;
    switch ( rng() % 5u )
    {
    case 0u: circuit.h( q ); break;
    case 1u: circuit.t( q ); break;
    case 2u: circuit.rx( q, 0.1 * static_cast<double>( rng() % 60u ) ); break;
    case 3u: circuit.cx( q, ( q + 1u ) % 5u ); break;
    default: circuit.cz( q, ( q + 2u ) % 5u ); break;
    }
  }
  statevector_simulator simulator( 5u );
  simulator.run( circuit );
  EXPECT_NEAR( simulator.norm(), 1.0, 1e-9 );
}

TEST( statevector_test, measurement_collapses_deterministic_state )
{
  qcircuit circuit( 2u );
  circuit.x( 1u );
  circuit.measure_all();
  statevector_simulator simulator( 2u );
  simulator.run( circuit );
  const auto& record = simulator.measurement_record();
  ASSERT_EQ( record.size(), 2u );
  EXPECT_FALSE( record[0].second );
  EXPECT_TRUE( record[1].second );
}

TEST( statevector_test, measurement_of_entangled_pair_is_correlated )
{
  for ( uint64_t seed = 0u; seed < 20u; ++seed )
  {
    qcircuit circuit( 2u );
    circuit.h( 0u );
    circuit.cx( 0u, 1u );
    circuit.measure_all();
    statevector_simulator simulator( 2u, seed );
    simulator.run( circuit );
    const auto& record = simulator.measurement_record();
    EXPECT_EQ( record[0].second, record[1].second ) << "seed=" << seed;
  }
}

TEST( statevector_test, sample_counts_match_probabilities )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure_all();
  const auto counts = sample_counts( circuit, 4096u, 7u );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : counts )
  {
    EXPECT_TRUE( outcome == 0b00u || outcome == 0b11u ) << outcome;
    total += count;
  }
  EXPECT_EQ( total, 4096u );
  EXPECT_NEAR( static_cast<double>( counts.at( 0b00u ) ) / 4096.0, 0.5, 0.05 );
}

TEST( statevector_test, qubit_limit )
{
  EXPECT_THROW( statevector_simulator( 29u ), std::invalid_argument );
}

TEST( unitary_test, cnot_matrix )
{
  qcircuit circuit( 2u );
  circuit.cx( 0u, 1u );
  const auto matrix = build_unitary( circuit );
  /* CNOT with control q0: |01> (=1) -> |11> (=3) in our bit order */
  EXPECT_NEAR( std::abs( matrix[0][0] ), 1.0, tolerance );
  EXPECT_NEAR( std::abs( matrix[1][3] ), 1.0, tolerance );
  EXPECT_NEAR( std::abs( matrix[2][2] ), 1.0, tolerance );
  EXPECT_NEAR( std::abs( matrix[3][1] ), 1.0, tolerance );
}

TEST( unitary_test, global_phase_equivalence )
{
  qcircuit a( 1u );
  a.z( 0u );
  qcircuit b( 1u );
  b.x( 0u );
  b.z( 0u );
  b.x( 0u ); /* = -Z */
  EXPECT_TRUE( circuits_equivalent( a, b ) );

  qcircuit c( 1u );
  c.x( 0u );
  EXPECT_FALSE( circuits_equivalent( a, c ) );
}

TEST( unitary_test, permutation_check )
{
  qcircuit circuit( 2u );
  circuit.cx( 0u, 1u );
  EXPECT_TRUE( circuit_implements_permutation( circuit, { 0u, 3u, 2u, 1u } ) );
  EXPECT_FALSE( circuit_implements_permutation( circuit, { 0u, 1u, 2u, 3u } ) );
}

TEST( noise_test, ideal_model_reproduces_exact_outcome )
{
  qcircuit circuit( 2u );
  circuit.x( 0u );
  circuit.measure_all();
  const auto counts = sample_counts_noisy( circuit, noise_model::ideal(), 256u, 3u );
  ASSERT_EQ( counts.size(), 1u );
  EXPECT_EQ( counts.begin()->first, 0b01u );
  EXPECT_EQ( counts.begin()->second, 256u );
}

TEST( noise_test, readout_error_flips_bits )
{
  qcircuit circuit( 1u );
  circuit.measure( 0u );
  noise_model model = noise_model::ideal();
  model.p_readout = 0.25;
  const auto counts = sample_counts_noisy( circuit, model, 8192u, 5u );
  const double flipped = static_cast<double>( counts.count( 1u ) ? counts.at( 1u ) : 0u ) / 8192.0;
  EXPECT_NEAR( flipped, 0.25, 0.03 );
}

TEST( noise_test, depolarizing_noise_degrades_success_probability )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.cx( 0u, 1u );
  circuit.h( 0u ); /* identity overall */
  circuit.measure_all();
  noise_model model = noise_model::ideal();
  model.p_two = 0.2;
  const auto counts = sample_counts_noisy( circuit, model, 4096u, 9u );
  const double success = static_cast<double>( counts.at( 0u ) ) / 4096.0;
  EXPECT_LT( success, 0.999 );
  EXPECT_GT( success, 0.5 );
}

TEST( noise_test, requires_measurements )
{
  qcircuit circuit( 1u );
  circuit.h( 0u );
  EXPECT_THROW( sample_counts_noisy( circuit, noise_model::ideal(), 10u, 1u ),
                std::invalid_argument );
}

TEST( format_outcome_test, bit_order_matches_paper_axis )
{
  EXPECT_EQ( format_outcome( 0b0001u, 4u ), "0001" );
  EXPECT_EQ( format_outcome( 0b1000u, 4u ), "1000" );
  EXPECT_EQ( format_outcome( 5u, 4u ), "0101" );
}

} // namespace
} // namespace qda
