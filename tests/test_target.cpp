#include "pipeline/pass_manager.hpp"
#include "pipeline/target.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

/*! \brief Deterministic Clifford circuit: |00> -> |11>, measured. */
qcircuit deterministic_clifford()
{
  qcircuit circuit( 2u );
  circuit.x( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure_all();
  return circuit;
}

TEST( target_registry_test, builtin_targets_are_registered )
{
  auto& registry = target_registry::instance();
  for ( const char* name :
        { "statevector", "stabilizer", "ibm_qx2", "ibm_qx4", "ibm_qx4_ideal", "ibm_qx5" } )
  {
    EXPECT_TRUE( registry.contains( name ) ) << name;
  }
  EXPECT_THROW( registry.at( "qpu_on_mars" ), std::invalid_argument );
  EXPECT_THROW( registry.run( "qpu_on_mars", deterministic_clifford(), 8u ),
                std::invalid_argument );
}

TEST( target_registry_test, duplicate_registration_is_rejected )
{
  target_registry registry;
  registry.register_target( make_statevector_target() );
  EXPECT_THROW( registry.register_target( make_statevector_target() ),
                std::invalid_argument );
  EXPECT_THROW( registry.register_target( nullptr ), std::invalid_argument );
}

TEST( target_registry_test, constrained_flags_and_devices )
{
  auto& registry = target_registry::instance();
  EXPECT_FALSE( registry.at( "statevector" ).constrained() );
  EXPECT_EQ( registry.at( "statevector" ).device(), nullptr );
  EXPECT_FALSE( registry.at( "stabilizer" ).constrained() );
  EXPECT_TRUE( registry.at( "ibm_qx4" ).constrained() );
  ASSERT_NE( registry.at( "ibm_qx4" ).device(), nullptr );
  EXPECT_EQ( registry.at( "ibm_qx4" ).device()->num_qubits(), 5u );
}

TEST( target_registry_test, all_three_backend_kinds_agree_on_deterministic_circuit )
{
  auto& registry = target_registry::instance();
  const auto circuit = deterministic_clifford();
  for ( const char* name : { "statevector", "stabilizer", "ibm_qx4_ideal" } )
  {
    const auto result = registry.run( name, circuit, 32u, 7u );
    EXPECT_EQ( result.target_name, name );
    EXPECT_EQ( result.shots, 32u );
    ASSERT_EQ( result.counts.size(), 1u ) << name;
    EXPECT_EQ( result.counts.begin()->first, 0b11u ) << name;
    EXPECT_EQ( result.counts.begin()->second, 32u ) << name;
  }
}

TEST( target_registry_test, routing_applied_only_for_constrained_targets )
{
  /* distant CNOT on the qx4 line forces SWAPs or direction fixes */
  qcircuit circuit( 5u );
  circuit.x( 0u );
  circuit.cx( 0u, 4u );
  circuit.measure_all();
  auto& registry = target_registry::instance();

  const auto device = registry.run( "ibm_qx4_ideal", circuit, 16u, 3u );
  EXPECT_GT( device.added_swaps + device.added_direction_fixes, 0u );

  const auto logical = registry.run( "statevector", circuit, 16u, 3u );
  EXPECT_EQ( logical.added_swaps + logical.added_direction_fixes, 0u );

  /* logical outcome survives routing on the ideal device */
  ASSERT_EQ( device.counts.size(), 1u );
  EXPECT_EQ( device.counts.begin()->first, logical.counts.begin()->first );
}

TEST( target_registry_test, stabilizer_rejects_non_clifford_circuits )
{
  qcircuit circuit( 1u );
  circuit.t( 0u );
  circuit.measure_all();
  EXPECT_THROW( target_registry::instance().run( "stabilizer", circuit, 8u ),
                std::invalid_argument );
}

TEST( target_registry_test, statevector_rejects_oversized_circuits )
{
  qcircuit circuit( 30u );
  circuit.h( 0u );
  circuit.measure_all();
  EXPECT_THROW( target_registry::instance().run( "statevector", circuit, 1u ),
                std::invalid_argument );
}

TEST( target_registry_test, device_rejects_circuits_larger_than_chip )
{
  qcircuit circuit( 8u );
  circuit.h( 0u );
  circuit.measure_all();
  EXPECT_THROW( target_registry::instance().run( "ibm_qx4", circuit, 1u ),
                std::invalid_argument );
}

TEST( target_registry_test, noisy_device_spreads_outcomes )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.measure_all();
  const auto result = target_registry::instance().run( "ibm_qx4", circuit, 2048u, 7u );
  uint64_t total = 0u;
  for ( const auto& [outcome, count] : result.counts )
  {
    total += count;
  }
  EXPECT_EQ( total, 2048u );
  EXPECT_GT( result.counts.size(), 2u );
}

TEST( target_registry_test, compiled_eq5_circuit_dispatches_to_backends )
{
  /* compile the paper's Eq. (5) program, then execute the result on an
   * unconstrained and a constrained backend through one interface */
  pass_manager manager;
  const auto compiled = manager.run( "revgen --hwb 4; tbs; revsimp; rptm; tpar" );
  auto circuit = compiled.ir.require_quantum().circuit;
  circuit.measure_all();

  auto& registry = target_registry::instance();
  const auto exact = registry.run( "statevector", circuit, 16u, 11u );
  ASSERT_EQ( exact.counts.size(), 1u );
  /* hwb maps |0...0> to itself; helpers stay clean */
  EXPECT_EQ( exact.counts.begin()->first, 0u );

  ASSERT_LE( circuit.num_qubits(), 5u );
  const auto device = registry.run( "ibm_qx4_ideal", circuit, 16u, 11u );
  ASSERT_EQ( device.counts.size(), 1u );
  EXPECT_EQ( device.counts.begin()->first, 0u );
}

} // namespace
} // namespace qda
