#include "fault/failpoint.hpp"
#include "library/fingerprint.hpp"
#include "library/subcircuit_library.hpp"
#include "mapping/clifford_t.hpp"
#include "phasepoly/phasepoly.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <numbers>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h> /* ::truncate */

namespace qda
{
namespace
{

/* ---------------------------------------------------------------- */
/* helpers                                                          */
/* ---------------------------------------------------------------- */

/*! Library that admits every offered shape on first sighting. */
library::library_options eager_options()
{
  library::library_options options;
  options.admit_cost_ms = 0.0;
  return options;
}

phasepoly::tpar_options with_library( library::subcircuit_library& lib )
{
  phasepoly::tpar_options options;
  options.resynthesis.library = &lib;
  return options;
}

/*! Removes a store file before and after a persistence test. */
struct scoped_store_file
{
  explicit scoped_store_file( std::string name ) : path( std::move( name ) )
  {
    std::remove( path.c_str() );
  }
  ~scoped_store_file() { std::remove( path.c_str() ); }

  std::string path;
};

void write_file( const std::string& path, const std::string& bytes )
{
  std::FILE* file = std::fopen( path.c_str(), "wb" );
  ASSERT_NE( file, nullptr );
  ASSERT_EQ( std::fwrite( bytes.data(), 1u, bytes.size(), file ), bytes.size() );
  std::fclose( file );
}

long file_size( const std::string& path )
{
  std::FILE* file = std::fopen( path.c_str(), "rb" );
  if ( !file )
  {
    return -1;
  }
  std::fseek( file, 0, SEEK_END );
  const long size = std::ftell( file );
  std::fclose( file );
  return size;
}

/*! A circuit with two phase-poly regions split by an H wall. */
qcircuit sample_circuit()
{
  qcircuit circuit( 4u );
  circuit.t( 0u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u );
  circuit.cx( 1u, 2u );
  circuit.tdg( 2u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u );
  circuit.h( 1u );
  circuit.t( 1u );
  circuit.cx( 1u, 3u );
  circuit.t( 3u );
  circuit.cx( 1u, 3u );
  circuit.tdg( 1u );
  return circuit;
}

qcircuit random_clifford_t_circuit( std::mt19937_64& rng, uint32_t num_qubits,
                                    uint32_t num_gates )
{
  qcircuit circuit( num_qubits );
  for ( uint32_t g = 0u; g < num_gates; ++g )
  {
    const uint32_t q = rng() % num_qubits;
    switch ( rng() % 9u )
    {
    case 0u: circuit.t( q ); break;
    case 1u: circuit.tdg( q ); break;
    case 2u: circuit.s( q ); break;
    case 3u: circuit.h( q ); break;
    case 4u: circuit.x( q ); break;
    case 5u: circuit.z( q ); break;
    case 6u: circuit.cx( q, ( q + 1u ) % num_qubits ); break;
    case 7u: circuit.swap_( q, ( q + 1u ) % num_qubits ); break;
    default: circuit.cz( q, ( q + 2u ) % num_qubits ); break;
    }
  }
  return circuit;
}

/* ---------------------------------------------------------------- */
/* canonical fingerprints                                           */
/* ---------------------------------------------------------------- */

/*! Relabels a phase polynomial's variables: `perm[v]` is the new label
 *  of variable `v`; wires (output rows) move with their variable.
 */
phasepoly::phase_polynomial permuted( const phasepoly::phase_polynomial& poly,
                                      const std::vector<uint32_t>& perm )
{
  const auto map_bits = [&]( const bitvec& bits ) {
    bitvec out;
    for ( uint32_t v = 0u; v < poly.num_vars; ++v )
    {
      if ( bits.test( v ) )
      {
        out.set( perm[v] );
      }
    }
    return out;
  };

  phasepoly::phase_polynomial result;
  result.num_vars = poly.num_vars;
  result.global_phase = poly.global_phase;
  for ( const auto& term : poly.terms )
  {
    result.terms.push_back( { map_bits( term.parity ), term.angle } );
  }
  result.output_linear.resize( poly.num_vars );
  for ( uint32_t v = 0u; v < poly.num_vars; ++v )
  {
    result.output_linear[perm[v]] = map_bits( poly.output_linear[v] );
    if ( poly.output_constants.test( v ) )
    {
      result.output_constants.set( perm[v] );
    }
  }
  return result;
}

phasepoly::phase_polynomial sample_polynomial()
{
  constexpr double pi = std::numbers::pi;
  phasepoly::phase_polynomial poly;
  poly.num_vars = 3u;
  poly.terms.push_back( { bitvec{ 0b011u }, pi / 4.0 } );
  poly.terms.push_back( { bitvec{ 0b100u }, pi / 2.0 } );
  poly.terms.push_back( { bitvec{ 0b101u }, -pi / 4.0 } );
  poly.output_linear = { bitvec{ 0b011u }, bitvec{ 0b010u }, bitvec{ 0b100u } };
  poly.output_constants.set( 1u );
  return poly;
}

TEST( library_fingerprint_test, qubit_relabeled_polynomials_hash_equal )
{
  const auto poly = sample_polynomial();
  const auto relabeled = permuted( poly, { 2u, 0u, 1u } );

  phasepoly::splice_probe a;
  phasepoly::splice_probe b;
  library::fingerprint_phase_polynomial( poly, "tag", a );
  library::fingerprint_phase_polynomial( relabeled, "tag", b );

  ASSERT_TRUE( a.valid );
  ASSERT_TRUE( b.valid );
  EXPECT_EQ( a.key, b.key );
  EXPECT_EQ( a.bytes, b.bytes );
}

TEST( library_fingerprint_test, commuting_reorder_hashes_equal )
{
  /* the T gates on distinct qubits commute: different spellings, same
   * phase polynomial, same fingerprint */
  qcircuit first( 2u );
  first.t( 0u );
  first.t( 1u );
  first.cx( 0u, 1u );
  first.t( 1u );

  qcircuit second( 2u );
  second.t( 1u );
  second.t( 0u );
  second.cx( 0u, 1u );
  second.t( 1u );

  const std::vector<uint32_t> qubits{ 0u, 1u };
  const auto poly_a = phasepoly::extract_phase_polynomial(
      first, 0u, static_cast<uint32_t>( first.num_gates() ), qubits );
  const auto poly_b = phasepoly::extract_phase_polynomial(
      second, 0u, static_cast<uint32_t>( second.num_gates() ), qubits );

  phasepoly::splice_probe a;
  phasepoly::splice_probe b;
  library::fingerprint_phase_polynomial( poly_a, "tag", a );
  library::fingerprint_phase_polynomial( poly_b, "tag", b );
  EXPECT_EQ( a.key, b.key );
  EXPECT_EQ( a.bytes, b.bytes );
}

TEST( library_fingerprint_test, near_miss_one_extra_t_hashes_distinct )
{
  const auto poly = sample_polynomial();
  auto near_miss = poly;
  near_miss.terms.push_back( { bitvec{ 0b010u }, std::numbers::pi / 4.0 } );

  phasepoly::splice_probe a;
  phasepoly::splice_probe b;
  library::fingerprint_phase_polynomial( poly, "tag", a );
  library::fingerprint_phase_polynomial( near_miss, "tag", b );
  EXPECT_NE( a.bytes, b.bytes );
  EXPECT_NE( a.key, b.key );
}

TEST( library_fingerprint_test, option_tag_separates_entries )
{
  const auto poly = sample_polynomial();
  phasepoly::splice_probe a;
  phasepoly::splice_probe b;
  library::fingerprint_phase_polynomial( poly, "tpar-region|s4", a );
  library::fingerprint_phase_polynomial( poly, "tpar-region|s6", b );
  EXPECT_NE( a.key, b.key );
}

TEST( library_fingerprint_test, circuit_fingerprint_is_first_touch_canonical )
{
  qcircuit small( 2u );
  small.h( 0u );
  small.cx( 0u, 1u );
  small.t( 1u );

  /* the same gates moved to qubits {1, 2} of a wider circuit: the
   * first-touch relabeling erases the shift */
  qcircuit shifted( 3u );
  shifted.h( 1u );
  shifted.cx( 1u, 2u );
  shifted.t( 2u );

  phasepoly::splice_probe a;
  phasepoly::splice_probe b;
  library::fingerprint_circuit( small, "tag", a );
  library::fingerprint_circuit( shifted, "tag", b );
  EXPECT_EQ( a.key, b.key );
  EXPECT_EQ( a.bytes, b.bytes );
  EXPECT_EQ( a.wires, ( std::vector<uint32_t>{ 0u, 1u } ) );
  EXPECT_EQ( b.wires, ( std::vector<uint32_t>{ 1u, 2u } ) );
}

/* ---------------------------------------------------------------- */
/* tpar splicing                                                    */
/* ---------------------------------------------------------------- */

TEST( library_splice_test, second_sighting_splices_whole_tpar_input )
{
  library::subcircuit_library lib{ eager_options() };
  const auto circuit = sample_circuit();

  const auto first = phasepoly::tpar( circuit, with_library( lib ) );
  const auto cold = lib.statistics();
  EXPECT_EQ( cold.hits, 0u );
  EXPECT_GT( cold.admits, 0u );

  const auto second = phasepoly::tpar( circuit, with_library( lib ) );
  const auto warm = lib.statistics();
  EXPECT_GT( warm.hits, cold.hits );

  EXPECT_EQ( first, second ); /* splices are byte-exact */
  EXPECT_TRUE( circuits_equivalent( second, circuit, 1e-12 ) );
}

TEST( library_splice_test, region_hit_survives_different_surroundings )
{
  /* two circuits with different whole-input spellings sharing one
   * region up to qubit relabeling: the region tier must hit */
  qcircuit first( 3u );
  first.h( 2u );
  first.t( 0u );
  first.cx( 0u, 1u );
  first.t( 1u );
  first.cx( 0u, 1u );
  first.tdg( 0u );

  qcircuit second( 3u );
  second.h( 2u );
  second.h( 2u ); /* changes the whole-circuit fingerprint without
                   * joining the phase-poly region (h is not a region
                   * kind, x would be) */
  second.t( 1u );
  second.cx( 1u, 0u );
  second.t( 0u );
  second.cx( 1u, 0u );
  second.tdg( 1u );

  library::subcircuit_library lib{ eager_options() };
  const auto out_first = phasepoly::tpar( first, with_library( lib ) );
  const auto cold = lib.statistics();
  const auto out_second = phasepoly::tpar( second, with_library( lib ) );
  const auto warm = lib.statistics();

  EXPECT_GT( warm.hits, cold.hits );
  EXPECT_TRUE( circuits_equivalent( out_first, first, 1e-12 ) );
  EXPECT_TRUE( circuits_equivalent( out_second, second, 1e-12 ) );
}

TEST( library_splice_test, randomized_splices_match_resynthesis_exactly )
{
  std::mt19937_64 rng( 77u );
  for ( uint32_t trial = 0u; trial < 20u; ++trial )
  {
    const auto circuit = random_clifford_t_circuit( rng, 4u, 50u );

    library::subcircuit_library lib{ eager_options() };
    const auto reference = phasepoly::tpar( circuit ); /* no library */
    const auto cold = phasepoly::tpar( circuit, with_library( lib ) );
    const auto warm = phasepoly::tpar( circuit, with_library( lib ) );

    ASSERT_EQ( cold, reference ) << "trial=" << trial;
    ASSERT_EQ( warm, reference ) << "trial=" << trial;
    ASSERT_TRUE( circuits_equivalent( warm, circuit, 1e-12 ) ) << "trial=" << trial;
  }
}

TEST( library_splice_test, admission_threshold_rejects_cold_shapes )
{
  library::library_options options;
  options.admit_cost_ms = 1e9; /* nothing is ever hot enough */
  library::subcircuit_library lib{ options };

  const auto circuit = sample_circuit();
  phasepoly::tpar( circuit, with_library( lib ) );
  phasepoly::tpar( circuit, with_library( lib ) );

  const auto stats = lib.statistics();
  EXPECT_EQ( stats.hits, 0u );
  EXPECT_EQ( stats.entries, 0u );
  EXPECT_GT( stats.rejected_cold, 0u );
}

TEST( library_splice_test, zero_capacity_disables_storage )
{
  library::library_options options;
  options.admit_cost_ms = 0.0;
  options.capacity = 0u;
  library::subcircuit_library lib{ options };

  const auto circuit = sample_circuit();
  const auto first = phasepoly::tpar( circuit, with_library( lib ) );
  const auto second = phasepoly::tpar( circuit, with_library( lib ) );

  EXPECT_EQ( lib.statistics().hits, 0u );
  EXPECT_EQ( lib.statistics().entries, 0u );
  EXPECT_EQ( first, second );
}

/* ---------------------------------------------------------------- */
/* rptm and MCT-ladder splicing                                     */
/* ---------------------------------------------------------------- */

TEST( library_splice_test, rptm_second_sighting_splices_mapped_circuit )
{
  rev_circuit source( 3u );
  source.add_toffoli( 0u, 1u, 2u );
  source.add_cnot( 0u, 1u );
  source.add_not( 2u );
  source.add_toffoli( 1u, 2u, 0u );

  library::subcircuit_library lib{ eager_options() };
  clifford_t_options options;
  options.library = &lib;

  const auto reference = map_to_clifford_t( source ); /* no library */
  const auto cold = map_to_clifford_t( source, options );
  const auto hits_after_cold = lib.statistics().hits;
  const auto warm = map_to_clifford_t( source, options );

  EXPECT_GT( lib.statistics().hits, hits_after_cold );
  EXPECT_EQ( cold.circuit, reference.circuit );
  EXPECT_EQ( warm.circuit, reference.circuit );
  EXPECT_EQ( warm.num_helper_qubits, reference.num_helper_qubits );
  EXPECT_TRUE( circuits_equivalent( warm.circuit, cold.circuit, 1e-12 ) );
}

TEST( library_splice_test, rptm_splice_relabels_first_touch_equivalent_input )
{
  /* the same MCT cascade shifted onto lines {1, 2, 3} of a wider
   * circuit: first-touch order is preserved, so the second mapping
   * must splice and relabel back */
  rev_circuit narrow( 3u );
  narrow.add_toffoli( 0u, 1u, 2u );
  narrow.add_cnot( 0u, 2u );

  rev_circuit wide( 4u );
  wide.add_toffoli( 1u, 2u, 3u );
  wide.add_cnot( 1u, 3u );

  library::subcircuit_library lib{ eager_options() };
  clifford_t_options options;
  options.library = &lib;

  map_to_clifford_t( narrow, options );
  const auto hits_before = lib.statistics().hits;
  const auto spliced = map_to_clifford_t( wide, options );
  EXPECT_GT( lib.statistics().hits, hits_before );

  const auto reference = map_to_clifford_t( wide );
  EXPECT_EQ( spliced.circuit, reference.circuit );
  EXPECT_EQ( spliced.num_helper_qubits, reference.num_helper_qubits );
}

TEST( library_splice_test, mct_ladder_replay_matches_fresh_lowering )
{
  qcircuit circuit( 6u );
  circuit.mcx( { 0u, 1u, 2u, 3u, 4u }, 5u );

  library::subcircuit_library lib{ eager_options() };
  clifford_t_options options;
  options.strategy = mct_strategy::clean;
  options.library = &lib;

  const auto reference = lower_multi_controlled_gates( circuit );
  const auto cold = lower_multi_controlled_gates( circuit, options );
  EXPECT_GT( lib.statistics().entries, 0u );

  /* replay goes through lookup_ladder even when the whole-input tier
   * is bypassed: lower a differently-shaped circuit with the same
   * control count */
  qcircuit shifted( 7u );
  shifted.h( 0u );
  shifted.mcx( { 1u, 2u, 3u, 4u, 5u }, 6u );

  const auto hits_before = lib.statistics().hits;
  const auto warm = lower_multi_controlled_gates( shifted, options );
  EXPECT_GT( lib.statistics().hits, hits_before );

  const auto warm_reference = lower_multi_controlled_gates( shifted );
  EXPECT_EQ( cold.circuit, reference.circuit );
  EXPECT_EQ( warm.circuit, warm_reference.circuit );
}

/* ---------------------------------------------------------------- */
/* persistence                                                      */
/* ---------------------------------------------------------------- */

TEST( library_persistence_test, warm_restart_reloads_admitted_entries )
{
  scoped_store_file store{ "qda_test_library_roundtrip.bin" };
  const auto circuit = sample_circuit();

  auto options = eager_options();
  options.path = store.path;
  uint64_t admitted = 0u;
  qcircuit cold( 1u );
  {
    library::subcircuit_library writer{ options };
    cold = phasepoly::tpar( circuit, with_library( writer ) );
    admitted = writer.statistics().admits;
    ASSERT_GT( admitted, 0u );
  }

  /* a fresh "process": a new library instance over the same file */
  library::subcircuit_library reader{ options };
  const auto loaded = reader.statistics();
  EXPECT_EQ( loaded.loaded_entries, admitted );
  EXPECT_EQ( loaded.load_failures, 0u );
  EXPECT_EQ( loaded.load_truncated, 0u );

  const auto warm = phasepoly::tpar( circuit, with_library( reader ) );
  EXPECT_GT( reader.statistics().hits, 0u );
  EXPECT_EQ( warm, cold );
}

TEST( library_persistence_test, corrupt_header_cold_starts_with_counter )
{
  scoped_store_file store{ "qda_test_library_corrupt.bin" };
  write_file( store.path, "this is not a library file at all" );

  auto options = eager_options();
  options.path = store.path;
  library::subcircuit_library lib{ options };

  const auto stats = lib.statistics();
  EXPECT_EQ( stats.loaded_entries, 0u );
  EXPECT_EQ( stats.load_failures, 1u );

  /* the library must stay fully usable after a cold start */
  const auto circuit = sample_circuit();
  const auto first = phasepoly::tpar( circuit, with_library( lib ) );
  const auto second = phasepoly::tpar( circuit, with_library( lib ) );
  EXPECT_EQ( first, second );
  EXPECT_GT( lib.statistics().hits, 0u );
}

TEST( library_persistence_test, version_mismatch_cold_starts_with_counter )
{
  scoped_store_file store{ "qda_test_library_version.bin" };
  std::string bytes( "QDALIB1\n", 8u );
  const uint32_t future_version = 2u;
  bytes.append( reinterpret_cast<const char*>( &future_version ), sizeof( future_version ) );
  write_file( store.path, bytes );

  auto options = eager_options();
  options.path = store.path;
  library::subcircuit_library lib{ options };

  const auto stats = lib.statistics();
  EXPECT_EQ( stats.loaded_entries, 0u );
  EXPECT_EQ( stats.version_mismatches, 1u );
  EXPECT_EQ( stats.load_failures, 0u );
}

TEST( library_persistence_test, truncated_tail_keeps_valid_prefix )
{
  scoped_store_file store{ "qda_test_library_truncated.bin" };

  auto options = eager_options();
  options.path = store.path;
  uint64_t admitted = 0u;
  {
    library::subcircuit_library writer{ options };
    phasepoly::tpar( sample_circuit(), with_library( writer ) );
    std::mt19937_64 rng( 5u );
    phasepoly::tpar( random_clifford_t_circuit( rng, 4u, 40u ), with_library( writer ) );
    admitted = writer.statistics().admits;
    ASSERT_GE( admitted, 2u );
  }

  const long size = file_size( store.path );
  ASSERT_GT( size, 16 );
  ASSERT_EQ( ::truncate( store.path.c_str(), size - 7 ), 0 );

  library::subcircuit_library reader{ options };
  const auto stats = reader.statistics();
  EXPECT_EQ( stats.load_truncated, 1u );
  EXPECT_GE( stats.loaded_entries, 1u );
  EXPECT_LT( stats.loaded_entries, admitted );
}

#if QDA_FAILPOINTS_ENABLED

TEST( library_persistence_test, load_failpoint_cold_starts_without_crashing )
{
  scoped_store_file store{ "qda_test_library_failpoint.bin" };

  auto options = eager_options();
  options.path = store.path;
  {
    library::subcircuit_library writer{ options };
    phasepoly::tpar( sample_circuit(), with_library( writer ) );
    ASSERT_GT( writer.statistics().admits, 0u );
  }

  failpoint::registry::instance().arm(
      failpoint::parse_spec( "library.load:fail:1:1" ) );
  library::subcircuit_library lib{ options };
  failpoint::registry::instance().reset();

  const auto stats = lib.statistics();
  EXPECT_EQ( stats.loaded_entries, 0u );
  EXPECT_GE( stats.load_failures, 1u );

  /* disarmed, the same file loads fine again */
  library::subcircuit_library retry{ options };
  EXPECT_GT( retry.statistics().loaded_entries, 0u );
}

#endif

/* ---------------------------------------------------------------- */
/* concurrency (exercised under TSan in CI)                         */
/* ---------------------------------------------------------------- */

TEST( library_concurrency_test, parallel_compilations_share_one_library )
{
  constexpr uint32_t num_shapes = 4u;
  constexpr uint32_t num_threads = 8u;
  constexpr uint32_t rounds = 4u;

  std::vector<qcircuit> shapes;
  std::vector<qcircuit> references;
  std::mt19937_64 rng( 23u );
  for ( uint32_t s = 0u; s < num_shapes; ++s )
  {
    shapes.push_back( random_clifford_t_circuit( rng, 4u, 40u ) );
    references.push_back( phasepoly::tpar( shapes.back() ) );
  }

  library::subcircuit_library lib{ eager_options() };
  std::atomic<uint32_t> mismatches{ 0u };

  std::vector<std::thread> workers;
  for ( uint32_t thread_id = 0u; thread_id < num_threads; ++thread_id )
  {
    workers.emplace_back( [&, thread_id] {
      for ( uint32_t round = 0u; round < rounds; ++round )
      {
        const uint32_t shape = ( thread_id + round ) % num_shapes;
        const auto out = phasepoly::tpar( shapes[shape], with_library( lib ) );
        if ( !( out == references[shape] ) )
        {
          mismatches.fetch_add( 1u );
        }
        lib.statistics(); /* concurrent snapshotting must be safe */
      }
    } );
  }
  for ( auto& worker : workers )
  {
    worker.join();
  }

  EXPECT_EQ( mismatches.load(), 0u );
  const auto stats = lib.statistics();
  EXPECT_GT( stats.hits, 0u );
  EXPECT_GT( stats.entries, 0u );
}

} // namespace
} // namespace qda
