/*! \file test_compile_server.cpp
 *  \brief Compile server core: sharded LRU storage, job queue +
 *         admission control, structural-hash dedup, coalescing,
 *         cross-job prefix reuse, and multi-threaded exactness.
 *
 *  The concurrency tests here are the ThreadSanitizer targets of the
 *  `sanitize (tsan)` CI job.
 */
#include "server/compile_server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace
{

using namespace qda;
using namespace qda::server;

constexpr const char* eq5 = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps";

structural_key key_of( uint64_t seed )
{
  return structural_key{ seed, ~seed };
}

/* ---------------- sharded LRU primitive ---------------- */

TEST( sharded_lru_test, evicts_least_recently_used_and_counts )
{
  sharded_lru<int> map( /*num_shards=*/1u, /*capacity=*/2u );
  map.insert( key_of( 1u ), std::make_shared<const int>( 1 ) );
  map.insert( key_of( 2u ), std::make_shared<const int>( 2 ) );

  /* touch 1 -> 2 becomes least recently used */
  ASSERT_NE( map.find( key_of( 1u ) ), nullptr );
  EXPECT_EQ( map.insert( key_of( 3u ), std::make_shared<const int>( 3 ) ), 1u );

  EXPECT_NE( map.find( key_of( 1u ) ), nullptr );
  EXPECT_NE( map.find( key_of( 3u ) ), nullptr );
  EXPECT_EQ( map.find( key_of( 2u ) ), nullptr );

  const auto stats = map.statistics();
  EXPECT_EQ( stats.evictions, 1u );
  EXPECT_EQ( stats.entries, 2u );
  EXPECT_EQ( stats.hits, 3u );
  EXPECT_EQ( stats.misses, 1u );
}

TEST( sharded_lru_test, per_shard_counters_sum_to_aggregate )
{
  sharded_lru<int> map( /*num_shards=*/4u, /*capacity=*/64u );
  for ( uint64_t i = 0u; i < 32u; ++i )
  {
    map.insert( key_of( i ), std::make_shared<const int>( static_cast<int>( i ) ) );
  }
  for ( uint64_t i = 0u; i < 32u; ++i )
  {
    EXPECT_NE( map.find( key_of( i ) ), nullptr );
  }
  EXPECT_EQ( map.find( key_of( 1000u ) ), nullptr );

  const auto shards = map.per_shard_statistics();
  ASSERT_EQ( shards.size(), 4u );
  shard_statistics total;
  for ( const auto& shard : shards )
  {
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.entries += shard.entries;
  }
  EXPECT_EQ( total.hits, 32u );
  EXPECT_EQ( total.misses, 1u );
  EXPECT_EQ( total.entries, 32u );

  map.clear();
  EXPECT_EQ( map.statistics().entries, 0u );
}

TEST( sharded_lru_test, mismatched_check_half_is_a_miss )
{
  sharded_lru<int> map( 1u, 4u );
  map.insert( key_of( 7u ), std::make_shared<const int>( 7 ) );
  /* same primary, different check half: must not alias */
  EXPECT_EQ( map.find( structural_key{ 7u, 0u } ), nullptr );
  EXPECT_FALSE( map.contains( structural_key{ 7u, 0u } ) );
  EXPECT_TRUE( map.contains( key_of( 7u ) ) );
}

/* ---------------- single-job serving ---------------- */

TEST( compile_server_test, serves_single_job_end_to_end )
{
  server_options options;
  options.num_workers = 2u;
  compile_server server( options );

  auto response = server.submit( eq5 ).get();
  ASSERT_NE( response.result, nullptr );
  EXPECT_FALSE( response.cache_hit );
  EXPECT_FALSE( response.coalesced );
  EXPECT_EQ( response.reused_passes, 0u );

  /* the served compilation equals a direct pass_manager run */
  pass_manager reference( /*enable_cache=*/false );
  const auto expected = reference.run( eq5 );
  ASSERT_TRUE( response.result->ir.last_statistics.has_value() );
  EXPECT_EQ( response.result->ir.last_statistics->t_count,
             expected.ir.last_statistics->t_count );
  EXPECT_TRUE( response.result->ir.require_quantum().circuit ==
               expected.ir.require_quantum().circuit );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.submitted, 1u );
  EXPECT_EQ( stats.completed, 1u );
  EXPECT_EQ( stats.compiled, 1u );
  EXPECT_EQ( stats.cache_hits, 0u );
  EXPECT_EQ( stats.failed, 0u );
}

TEST( compile_server_test, malformed_specs_fail_the_submitter )
{
  compile_server server( { .num_workers = 1u } );
  EXPECT_THROW( server.submit( "rev!gen --hwb 4" ), std::invalid_argument );
  EXPECT_THROW( server.submit( "tbs" ), std::logic_error ); /* wrong start stage */
  EXPECT_THROW( server.submit( "nope --x 1" ), std::invalid_argument );
  EXPECT_EQ( server.statistics().submitted, 0u );
}

/* ---------------- structural dedup ---------------- */

TEST( compile_server_test, equivalent_spellings_dedup_to_one_entry )
{
  compile_server server( { .num_workers = 1u } );
  const auto first = server.submit( "revgen --hwb 4; tbs; revsimp" ).get();
  EXPECT_FALSE( first.cache_hit );

  /* same pipeline, messy spelling: extra whitespace, empty segments */
  const auto messy = server.submit( " revgen  --hwb 4 ;; tbs ;\n revsimp " ).get();
  EXPECT_TRUE( messy.cache_hit );
  EXPECT_EQ( messy.result->ir.require_reversible().num_gates(),
             first.result->ir.require_reversible().num_gates() );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.cache_hits, 1u );
  EXPECT_EQ( stats.compiled, 1u );
  EXPECT_EQ( stats.result_cache.entries, 1u );
}

TEST( compile_server_test, exact_text_keying_misses_on_respelling )
{
  server_options options;
  options.num_workers = 1u;
  options.keying = key_mode::exact_text;
  compile_server server( options );

  EXPECT_FALSE( server.submit( "revgen --hwb 4; tbs; revsimp" ).get().cache_hit );
  /* identical pipeline, different spelling: the ablation keying cannot
   * see through it, demonstrating why the structural key exists */
  EXPECT_FALSE( server.submit( " revgen  --hwb 4 ;; tbs ;\n revsimp " ).get().cache_hit );
  EXPECT_TRUE( server.submit( "revgen --hwb 4; tbs; revsimp" ).get().cache_hit );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.compiled, 2u );
  EXPECT_EQ( stats.cache_hits, 1u );
}

/* ---------------- cross-job prefix reuse ---------------- */

struct compile_server_telemetry_test : ::testing::Test
{
  void SetUp() override
  {
    if ( !telemetry::compiled_in )
    {
      GTEST_SKIP() << "telemetry hooks compiled out";
    }
    telemetry::tracer::instance().clear();
    telemetry::metrics_registry::instance().reset();
    telemetry::set_enabled( true );
  }

  void TearDown() override
  {
    telemetry::set_enabled( false );
    telemetry::tracer::instance().clear();
    telemetry::metrics_registry::instance().reset();
  }

  static uint64_t counter_value( const std::string& name )
  {
    const auto snapshot = telemetry::metrics_registry::instance().snapshot();
    const auto it = std::find_if( snapshot.counters.begin(), snapshot.counters.end(),
                                  [&]( const auto& c ) { return c.first == name; } );
    return it == snapshot.counters.end() ? 0u : it->second;
  }
};

TEST_F( compile_server_telemetry_test, sibling_pipelines_resume_from_shared_prefix )
{
  compile_server server( { .num_workers = 1u } );

  /* cold run snapshots the IR after every pass prefix */
  const auto cold = server.submit( eq5 ).get();
  EXPECT_EQ( cold.reused_passes, 0u );

  /* sibling spec: same 4-pass prefix, different optimization tail */
  const auto sibling_spec = "revgen --hwb 4; tbs; revsimp; rptm; peephole; ps";
  const auto sibling = server.submit( sibling_spec ).get();
  EXPECT_FALSE( sibling.cache_hit );
  EXPECT_EQ( sibling.reused_passes, 4u ); /* revgen; tbs; revsimp; rptm */
  ASSERT_EQ( sibling.result->reports.size(), 6u );
  EXPECT_TRUE( sibling.result->reports[3].reused );
  EXPECT_FALSE( sibling.result->reports[4].reused );

  /* resumed compilation must equal compiling from scratch */
  pass_manager reference( /*enable_cache=*/false );
  const auto expected = reference.run( sibling_spec );
  ASSERT_TRUE( sibling.result->ir.last_statistics.has_value() );
  EXPECT_EQ( sibling.result->ir.last_statistics->t_count,
             expected.ir.last_statistics->t_count );
  EXPECT_TRUE( sibling.result->ir.require_quantum().circuit ==
               expected.ir.require_quantum().circuit );

  /* prefix savings are observable in the telemetry counters ... */
  EXPECT_EQ( counter_value( "server.prefix.hit" ), 1u );
  EXPECT_EQ( counter_value( "server.prefix.passes_skipped" ), 4u );
  EXPECT_GT( counter_value( "server.prefix.snapshot" ), 0u );

  /* ... and in the server aggregate */
  const auto stats = server.statistics();
  EXPECT_EQ( stats.prefix_hits, 1u );
  EXPECT_EQ( stats.prefix_passes_skipped, 4u );
  EXPECT_GT( stats.prefix_cache.entries, 0u );
  /* 6 cold passes + 2 executed on the resumed run */
  EXPECT_EQ( stats.passes_executed, 8u );
}

TEST( compile_server_test, prefix_reuse_can_be_disabled )
{
  server_options options;
  options.num_workers = 1u;
  options.enable_prefix_reuse = false;
  compile_server server( options );
  server.submit( eq5 ).get();
  const auto sibling =
      server.submit( "revgen --hwb 4; tbs; revsimp; rptm; peephole; ps" ).get();
  EXPECT_EQ( sibling.reused_passes, 0u );
  EXPECT_EQ( server.statistics().prefix_hits, 0u );
  EXPECT_EQ( server.statistics().prefix_cache.entries, 0u );
}

/* ---------------- coalescing and admission control ----------------
 *
 * Both tests drive the queue with a gate pass that blocks inside the
 * worker until the test releases it, making queue occupancy
 * deterministic. */

struct gate_control
{
  std::atomic<uint32_t> started{ 0u };
  std::atomic<bool> release{ false };

  void wait_for_start( uint32_t count ) const
  {
    while ( started.load() < count )
    {
      std::this_thread::yield();
    }
  }

  void open()
  {
    release.store( true );
  }
};

pass_registry make_gated_registry( gate_control& gate )
{
  pass_registry registry;
  register_builtin_passes( registry );
  pass_info blocked;
  blocked.name = "gate";
  blocked.summary = "test pass that blocks until released";
  blocked.accepts = { stage::permutation };
  blocked.produces = stage::permutation;
  blocked.known_options = { "id" };
  blocked.run = [&gate]( staged_ir&, const pass_arguments&, const pass_context& ) {
    gate.started.fetch_add( 1u );
    while ( !gate.release.load() )
    {
      std::this_thread::yield();
    }
  };
  registry.register_pass( std::move( blocked ) );
  return registry;
}

TEST( compile_server_test, identical_inflight_jobs_coalesce_into_one_compile )
{
  gate_control gate;
  const auto registry = make_gated_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.registry = &registry;
  compile_server server( options );

  auto first = server.submit( "revgen --hwb 3; gate" );
  gate.wait_for_start( 1u ); /* the worker is now inside the compile */
  auto second = server.submit( "revgen --hwb 3; gate" );
  auto third = server.submit( " revgen  --hwb 3 ; gate " ); /* messy spelling */
  gate.open();

  const auto r1 = first.get();
  const auto r2 = second.get();
  const auto r3 = third.get();
  EXPECT_FALSE( r1.coalesced );
  EXPECT_TRUE( r2.coalesced );
  EXPECT_TRUE( r3.coalesced );
  /* one compilation served all three */
  EXPECT_EQ( r2.result.get(), r1.result.get() );
  EXPECT_EQ( r3.result.get(), r1.result.get() );

  const auto stats = server.statistics();
  EXPECT_EQ( stats.compiled, 1u );
  EXPECT_EQ( stats.coalesced, 2u );
  EXPECT_EQ( stats.completed, 3u );
}

TEST( compile_server_test, overfull_queue_rejects_when_configured )
{
  gate_control gate;
  const auto registry = make_gated_registry( gate );
  server_options options;
  options.num_workers = 1u;
  options.max_queue_depth = 1u;
  options.reject_when_full = true;
  options.registry = &registry;
  compile_server server( options );

  auto running = server.submit( "revgen --hwb 3; gate --id 1" );
  gate.wait_for_start( 1u );                                 /* worker busy */
  auto queued = server.submit( "revgen --hwb 3; gate --id 2" ); /* fills the queue */
  EXPECT_EQ( server.queue_depth(), 1u );
  EXPECT_THROW( server.submit( "revgen --hwb 3; gate --id 3" ), server_overloaded );

  gate.open();
  EXPECT_NO_THROW( running.get() );
  EXPECT_NO_THROW( queued.get() );
  const auto stats = server.statistics();
  EXPECT_EQ( stats.rejected, 1u );
  EXPECT_EQ( stats.compiled, 2u );
  EXPECT_EQ( stats.peak_queue_depth, 1u );
}

TEST( compile_server_test, shutdown_drains_admitted_jobs )
{
  server_options options;
  options.num_workers = 2u;
  compile_server server( options );

  std::vector<std::future<compile_response>> futures;
  for ( uint32_t hwb = 3u; hwb <= 5u; ++hwb )
  {
    for ( const char* tail : { "tbs", "tbs; revsimp", "tbs; rptm" } )
    {
      futures.push_back( server.submit( "revgen --hwb " + std::to_string( hwb ) +
                                        "; " + tail ) );
    }
  }
  server.shutdown();
  server.shutdown(); /* idempotent */

  for ( auto& future : futures )
  {
    EXPECT_NE( future.get().result, nullptr ); /* every admitted job completed */
  }
  EXPECT_EQ( server.statistics().completed, futures.size() );
  EXPECT_THROW( server.submit( eq5 ), std::runtime_error );
}

/* ---------------- multi-threaded exactness (TSan targets) ---------------- */

TEST( compile_server_test, stress_eight_submitters_exact_accounting )
{
  const std::vector<std::string> unique = {
    "revgen --hwb 3; tbs",
    "revgen --hwb 3; tbs; revsimp",
    "revgen --hwb 3; tbs; rptm",
    "revgen --hwb 4; tbs",
    "revgen --hwb 4; tbs; revsimp",
    "revgen --hwb 4; tbs; rptm",
  };
  /* equivalent spellings exercised round-robin per submission */
  const auto respell = []( const std::string& spec, size_t variant ) {
    switch ( variant % 3u )
    {
    case 1u:
      return " " + spec + " ;";
    case 2u:
    {
      auto noisy = spec;
      for ( size_t pos = 0u; ( pos = noisy.find( "; ", pos ) ) != std::string::npos; )
      {
        noisy.replace( pos, 2u, " ;; " );
        pos += 4u;
      }
      return noisy;
    }
    default:
      return spec;
    }
  };

  /* single-threaded reference compilations */
  pass_manager reference( /*enable_cache=*/false );
  std::vector<uint64_t> expected_gates;
  expected_gates.reserve( unique.size() );
  for ( const auto& spec : unique )
  {
    const auto result = reference.run( spec );
    expected_gates.push_back( result.ir.current == stage::reversible
                                  ? result.ir.require_reversible().num_gates()
                                  : result.ir.require_quantum().circuit.num_gates() );
  }

  server_options options;
  options.num_workers = 8u;
  options.cache_shards = 4u;
  compile_server server( options );

  constexpr uint32_t num_threads = 8u;
  constexpr uint32_t per_thread = 25u;
  std::atomic<uint32_t> mismatches{ 0u };
  std::vector<std::thread> submitters;
  submitters.reserve( num_threads );
  for ( uint32_t t = 0u; t < num_threads; ++t )
  {
    submitters.emplace_back( [&, t] {
      for ( uint32_t i = 0u; i < per_thread; ++i )
      {
        const auto pick = ( t * per_thread + i ) % unique.size();
        const auto response =
            server.submit( respell( unique[pick], t + i ) ).get();
        const auto& ir = response.result->ir;
        const auto gates = ir.current == stage::reversible
                               ? ir.require_reversible().num_gates()
                               : ir.require_quantum().circuit.num_gates();
        if ( gates != expected_gates[pick] )
        {
          mismatches.fetch_add( 1u );
        }
      }
    } );
  }
  for ( auto& thread : submitters )
  {
    thread.join();
  }
  EXPECT_EQ( mismatches.load(), 0u );

  const auto stats = server.statistics();
  constexpr uint64_t total = num_threads * per_thread;
  EXPECT_EQ( stats.submitted, total );
  EXPECT_EQ( stats.completed, total );
  EXPECT_EQ( stats.failed, 0u );
  EXPECT_EQ( stats.rejected, 0u );

  /* exactness: every unique pipeline compiles exactly once -- racing
   * duplicates either hit the cache or coalesce onto the in-flight job */
  EXPECT_EQ( stats.compiled, unique.size() );
  EXPECT_EQ( stats.cache_hits + stats.coalesced, total - unique.size() );

  /* backend accounting: each submission probes the cache exactly once;
   * the probes that miss are the compiles and the coalesced attaches */
  EXPECT_EQ( stats.result_cache.hits, stats.cache_hits );
  EXPECT_EQ( stats.result_cache.misses, stats.compiled + stats.coalesced );
  EXPECT_EQ( stats.result_cache.entries, unique.size() );
}

TEST( compile_server_test, shared_pass_manager_is_thread_safe )
{
  /* the layer below the server: one pass_manager, one shared sharded
   * backend, eight threads driving run() directly */
  auto backend = std::make_shared<sharded_compilation_cache>( 4u, 64u );
  pass_manager manager( backend );

  const std::vector<std::string> specs = {
    "revgen --hwb 3; tbs",
    "revgen --hwb 3; tbs; revsimp",
    "revgen --hwb 4; tbs",
    "revgen --hwb 4; tbs; revsimp",
  };
  constexpr uint32_t num_threads = 8u;
  constexpr uint32_t per_thread = 16u;
  std::atomic<uint32_t> failures{ 0u };
  std::vector<std::thread> threads;
  threads.reserve( num_threads );
  for ( uint32_t t = 0u; t < num_threads; ++t )
  {
    threads.emplace_back( [&, t] {
      for ( uint32_t i = 0u; i < per_thread; ++i )
      {
        const auto& spec = specs[( t + i ) % specs.size()];
        const auto result = manager.run( spec );
        if ( result.ir.require_reversible().num_gates() == 0u )
        {
          failures.fetch_add( 1u );
        }
      }
    } );
  }
  for ( auto& thread : threads )
  {
    thread.join();
  }
  EXPECT_EQ( failures.load(), 0u );

  /* without coalescing a spec may compile more than once (concurrent
   * first misses), but lookups balance and the table stays bounded */
  const auto stats = manager.cache_stats();
  EXPECT_EQ( stats.hits + stats.misses, num_threads * per_thread );
  EXPECT_GE( stats.misses, specs.size() );
  EXPECT_EQ( stats.entries, specs.size() );
}

} // namespace
