#include "kernel/bits.hpp"
#include "kernel/truth_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qda
{
namespace
{

TEST( truth_table_test, constant_zero_on_construction )
{
  truth_table tt( 3u );
  EXPECT_EQ( tt.num_vars(), 3u );
  EXPECT_EQ( tt.num_bits(), 8u );
  EXPECT_TRUE( tt.is_constant0() );
  EXPECT_FALSE( tt.is_constant1() );
  EXPECT_EQ( tt.count_ones(), 0u );
}

TEST( truth_table_test, constant_one )
{
  const auto tt = truth_table::constant( 4u, true );
  EXPECT_TRUE( tt.is_constant1() );
  EXPECT_EQ( tt.count_ones(), 16u );
}

TEST( truth_table_test, constant_one_small_is_masked )
{
  const auto tt = truth_table::constant( 2u, true );
  EXPECT_EQ( tt.count_ones(), 4u );
  EXPECT_EQ( tt.words()[0], 0xfull );
}

TEST( truth_table_test, rejects_too_many_variables )
{
  EXPECT_THROW( truth_table( truth_table::max_num_vars + 1u ), std::invalid_argument );
}

TEST( truth_table_test, projection_small_variables )
{
  for ( uint32_t var = 0u; var < 4u; ++var )
  {
    const auto tt = truth_table::projection( 4u, var );
    for ( uint64_t x = 0u; x < 16u; ++x )
    {
      EXPECT_EQ( tt.get_bit( x ), test_bit( x, var ) ) << "var=" << var << " x=" << x;
    }
  }
}

TEST( truth_table_test, projection_large_variables )
{
  for ( uint32_t var = 5u; var < 9u; ++var )
  {
    const auto tt = truth_table::projection( 9u, var );
    for ( uint64_t x = 0u; x < tt.num_bits(); ++x )
    {
      ASSERT_EQ( tt.get_bit( x ), test_bit( x, var ) ) << "var=" << var << " x=" << x;
    }
  }
}

TEST( truth_table_test, projection_out_of_range_throws )
{
  EXPECT_THROW( truth_table::projection( 3u, 3u ), std::invalid_argument );
}

TEST( truth_table_test, set_get_flip_roundtrip )
{
  truth_table tt( 7u );
  tt.set_bit( 100u, true );
  EXPECT_TRUE( tt.get_bit( 100u ) );
  tt.flip_bit( 100u );
  EXPECT_FALSE( tt.get_bit( 100u ) );
  EXPECT_THROW( tt.get_bit( 128u ), std::out_of_range );
  EXPECT_THROW( tt.set_bit( 128u, true ), std::out_of_range );
}

TEST( truth_table_test, binary_string_roundtrip )
{
  const auto tt = truth_table::from_binary_string( "0110100110010110" );
  EXPECT_EQ( tt.num_vars(), 4u );
  EXPECT_EQ( tt.to_binary_string(), "0110100110010110" );
}

TEST( truth_table_test, binary_string_rejects_bad_input )
{
  EXPECT_THROW( truth_table::from_binary_string( "011" ), std::invalid_argument );
  EXPECT_THROW( truth_table::from_binary_string( "01x0" ), std::invalid_argument );
}

TEST( truth_table_test, hex_string_roundtrip )
{
  const auto tt = truth_table::from_hex_string( 4u, "8000" );
  EXPECT_TRUE( tt.get_bit( 15u ) );
  EXPECT_EQ( tt.count_ones(), 1u );
  EXPECT_EQ( tt.to_hex_string(), "8000" );

  const auto and2 = truth_table::from_hex_string( 2u, "8" );
  EXPECT_EQ( and2, truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u ) );
}

TEST( truth_table_test, hex_string_rejects_bad_input )
{
  EXPECT_THROW( truth_table::from_hex_string( 4u, "800" ), std::invalid_argument );
  EXPECT_THROW( truth_table::from_hex_string( 4u, "80g0" ), std::invalid_argument );
}

TEST( truth_table_test, bitwise_operators )
{
  const auto a = truth_table::projection( 3u, 0u );
  const auto b = truth_table::projection( 3u, 1u );
  const auto sum = a ^ b;
  const auto conj = a & b;
  const auto disj = a | b;
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    const bool xa = ( x >> 0u ) & 1u;
    const bool xb = ( x >> 1u ) & 1u;
    EXPECT_EQ( sum.get_bit( x ), xa != xb );
    EXPECT_EQ( conj.get_bit( x ), xa && xb );
    EXPECT_EQ( disj.get_bit( x ), xa || xb );
  }
  EXPECT_EQ( ( ~a ).count_ones(), 4u );
}

TEST( truth_table_test, operand_size_mismatch_throws )
{
  const auto a = truth_table::projection( 3u, 0u );
  const auto b = truth_table::projection( 4u, 0u );
  EXPECT_THROW( a & b, std::invalid_argument );
}

TEST( truth_table_test, cofactors_small )
{
  /* f = x0 & x1 */
  const auto f = truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u );
  EXPECT_TRUE( f.cofactor0( 0u ).is_constant0() );
  EXPECT_EQ( f.cofactor1( 0u ), truth_table::projection( 2u, 1u ) );
  EXPECT_TRUE( f.cofactor0( 1u ).is_constant0() );
  EXPECT_EQ( f.cofactor1( 1u ), truth_table::projection( 2u, 0u ) );
}

TEST( truth_table_test, cofactors_match_pointwise_definition )
{
  const auto f = random_truth_table( 8u, 42u );
  for ( uint32_t var = 0u; var < 8u; ++var )
  {
    const auto c0 = f.cofactor0( var );
    const auto c1 = f.cofactor1( var );
    for ( uint64_t x = 0u; x < f.num_bits(); ++x )
    {
      const uint64_t x0 = x & ~( uint64_t{ 1 } << var );
      const uint64_t x1 = x | ( uint64_t{ 1 } << var );
      ASSERT_EQ( c0.get_bit( x ), f.get_bit( x0 ) );
      ASSERT_EQ( c1.get_bit( x ), f.get_bit( x1 ) );
    }
  }
}

TEST( truth_table_test, shannon_expansion_reconstructs_function )
{
  const auto f = random_truth_table( 7u, 7u );
  for ( uint32_t var = 0u; var < 7u; ++var )
  {
    const auto xi = truth_table::projection( 7u, var );
    const auto reconstructed = ( ~xi & f.cofactor0( var ) ) | ( xi & f.cofactor1( var ) );
    ASSERT_EQ( reconstructed, f ) << "var=" << var;
  }
}

TEST( truth_table_test, support_and_dependency )
{
  const auto f = truth_table::projection( 5u, 1u ) ^ truth_table::projection( 5u, 3u );
  EXPECT_FALSE( f.depends_on( 0u ) );
  EXPECT_TRUE( f.depends_on( 1u ) );
  EXPECT_FALSE( f.depends_on( 2u ) );
  EXPECT_TRUE( f.depends_on( 3u ) );
  EXPECT_FALSE( f.depends_on( 4u ) );
  EXPECT_EQ( f.support(), ( std::vector<uint32_t>{ 1u, 3u } ) );
}

TEST( truth_table_test, swap_variables_is_involution )
{
  const auto f = random_truth_table( 6u, 99u );
  const auto g = f.swap_variables( 1u, 4u );
  EXPECT_EQ( g.swap_variables( 1u, 4u ), f );
  for ( uint64_t x = 0u; x < f.num_bits(); ++x )
  {
    ASSERT_EQ( g.get_bit( x ), f.get_bit( swap_bits( x, 1u, 4u ) ) );
  }
}

TEST( truth_table_test, extend_to_keeps_semantics )
{
  const auto f = truth_table::projection( 2u, 0u ) & truth_table::projection( 2u, 1u );
  const auto g = f.extend_to( 5u );
  EXPECT_EQ( g.num_vars(), 5u );
  for ( uint64_t x = 0u; x < g.num_bits(); ++x )
  {
    ASSERT_EQ( g.get_bit( x ), f.get_bit( x & 3u ) );
  }
  EXPECT_THROW( g.extend_to( 2u ), std::invalid_argument );
}

TEST( truth_table_test, ordering_is_total_on_samples )
{
  /* character i of the string is f(i), so "0001" is the numerically
   * larger table (bit 3 set) and "0010" the smaller one (bit 2 set) */
  const auto a = truth_table::from_binary_string( "0001" );
  const auto b = truth_table::from_binary_string( "0010" );
  EXPECT_TRUE( b < a );
  EXPECT_FALSE( a < b );
  EXPECT_FALSE( a < a );
}

TEST( truth_table_test, inner_product_function_values )
{
  const auto f = inner_product_function( 2u ); /* x0 y0 ^ x1 y1, y at vars 2,3 */
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const bool expected = ( ( x & 1u ) && ( ( x >> 2u ) & 1u ) ) !=
                          ( ( ( x >> 1u ) & 1u ) && ( ( x >> 3u ) & 1u ) );
    ASSERT_EQ( f.get_bit( x ), expected );
  }
}

TEST( truth_table_test, inner_product_interleaved_matches_paper_instance )
{
  /* paper Fig. 4: f(a,b,c,d) = (a and b) xor (c and d): pairs (0,1) and (2,3) */
  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  for ( uint64_t x = 0u; x < 16u; ++x )
  {
    const bool a = x & 1u, b = ( x >> 1u ) & 1u, c = ( x >> 2u ) & 1u, d = ( x >> 3u ) & 1u;
    ASSERT_EQ( f.get_bit( x ), ( a && b ) != ( c && d ) );
  }
}

TEST( truth_table_test, hidden_weighted_bit_function_spot_checks )
{
  const auto f = hidden_weighted_bit_function( 4u );
  EXPECT_FALSE( f.get_bit( 0u ) );    /* weight 0 -> 0 */
  EXPECT_TRUE( f.get_bit( 1u ) );     /* weight 1, bit 0 of 0001 = 1 */
  EXPECT_FALSE( f.get_bit( 2u ) );    /* weight 1, bit 0 of 0010 = 0 */
  EXPECT_TRUE( f.get_bit( 3u ) );     /* weight 2, bit 1 of 0011 = 1 */
  EXPECT_TRUE( f.get_bit( 15u ) );    /* weight 4, bit 3 of 1111 = 1 */
}

TEST( truth_table_test, majority_function_counts )
{
  const auto f = majority_function( 3u );
  EXPECT_EQ( f.count_ones(), 4u );
  EXPECT_TRUE( f.get_bit( 0b011u ) );
  EXPECT_FALSE( f.get_bit( 0b001u ) );
  EXPECT_TRUE( f.get_bit( 0b111u ) );
}

TEST( truth_table_test, random_truth_table_is_deterministic_per_seed )
{
  EXPECT_EQ( random_truth_table( 8u, 5u ), random_truth_table( 8u, 5u ) );
  EXPECT_NE( random_truth_table( 8u, 5u ), random_truth_table( 8u, 6u ) );
}

class truth_table_word_boundary_test : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P( truth_table_word_boundary_test, projection_consistent_across_word_sizes )
{
  const uint32_t num_vars = GetParam();
  for ( uint32_t var = 0u; var < num_vars; ++var )
  {
    const auto tt = truth_table::projection( num_vars, var );
    EXPECT_EQ( tt.count_ones(), tt.num_bits() / 2u );
    /* sampled pointwise check */
    for ( uint64_t x = 0u; x < tt.num_bits(); x += 17u )
    {
      ASSERT_EQ( tt.get_bit( x ), test_bit( x, var ) );
    }
  }
}

INSTANTIATE_TEST_SUITE_P( var_counts, truth_table_word_boundary_test,
                          ::testing::Values( 1u, 2u, 5u, 6u, 7u, 8u, 10u, 12u ) );

TEST( bits_test, popcount_parity )
{
  EXPECT_EQ( popcount64( 0u ), 0u );
  EXPECT_EQ( popcount64( 0xffull ), 8u );
  EXPECT_TRUE( parity64( 0b111u ) );
  EXPECT_FALSE( parity64( 0b110011u ) );
  EXPECT_TRUE( inner_product_bits( 0b1100u, 0b0100u ) );
  EXPECT_FALSE( inner_product_bits( 0b1100u, 0b1100u ) );
}

TEST( bits_test, log2_and_powers )
{
  EXPECT_TRUE( is_power_of_two( 1u ) );
  EXPECT_TRUE( is_power_of_two( 64u ) );
  EXPECT_FALSE( is_power_of_two( 0u ) );
  EXPECT_FALSE( is_power_of_two( 12u ) );
  EXPECT_EQ( log2_ceil( 1u ), 0u );
  EXPECT_EQ( log2_ceil( 2u ), 1u );
  EXPECT_EQ( log2_ceil( 3u ), 2u );
  EXPECT_EQ( log2_ceil( 1024u ), 10u );
}

TEST( bits_test, bit_surgery )
{
  EXPECT_EQ( assign_bit( 0u, 3u, true ), 8u );
  EXPECT_EQ( assign_bit( 8u, 3u, false ), 0u );
  EXPECT_EQ( flip_bit( 0u, 0u ), 1u );
  EXPECT_EQ( swap_bits( 0b10u, 0u, 1u ), 0b01u );
  EXPECT_EQ( swap_bits( 0b11u, 0u, 1u ), 0b11u );
  EXPECT_EQ( least_significant_bit( 0b1000u ), 3u );
  EXPECT_EQ( most_significant_bit( 0b1000u ), 3u );
}

} // namespace
} // namespace qda
