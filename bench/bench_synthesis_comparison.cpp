/*! \file bench_synthesis_comparison.cpp
 *  \brief Experiment E6: reversible synthesis method comparison.
 *
 *  Ablation backing the paper's Sec. V discussion: the same benchmark
 *  permutations synthesized with unidirectional TBS, bidirectional TBS
 *  and Young-subgroup DBS, reporting MCT gate count, control count,
 *  classical quantum-cost, post-mapping T-count and synthesis runtime.
 *  Every circuit is verified against its specification.
 */
#include "kernel/permutation.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/revsimp.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace
{

using namespace qda;

struct benchmark_case
{
  std::string name;
  permutation target;
};

struct method
{
  std::string name;
  std::function<rev_circuit( const permutation& )> synthesize;
};

} // namespace

int main()
{
  using clock = std::chrono::steady_clock;

  std::vector<benchmark_case> cases;
  for ( uint32_t n = 4u; n <= 6u; ++n )
  {
    cases.push_back( { "hwb-" + std::to_string( n ), hwb_permutation( n ) } );
  }
  for ( uint32_t n = 4u; n <= 6u; ++n )
  {
    cases.push_back( { "gray-" + std::to_string( n ), gray_code_permutation( n ) } );
  }
  cases.push_back( { "add3-6", modular_adder_permutation( 6u, 3u ) } );
  cases.push_back( { "mul5-6", modular_multiplier_permutation( 6u, 5u ) } );
  cases.push_back( { "fig7-pi", paper_fig7_permutation() } );
  for ( uint64_t seed = 1u; seed <= 2u; ++seed )
  {
    cases.push_back( { "rand6-" + std::to_string( seed ), permutation::random( 6u, seed ) } );
  }

  const std::vector<method> methods{
      { "tbs", transformation_based_synthesis },
      { "tbs-bidi", transformation_based_synthesis_bidirectional },
      { "dbs", decomposition_based_synthesis } };

  std::printf( "E6: synthesis method comparison (all circuits verified)\n" );
  std::printf( "%-10s %-9s %-7s %-9s %-7s %-9s %-10s\n", "case", "method", "gates", "controls",
               "qcost", "T-count", "time-us" );

  bool all_verified = true;
  for ( const auto& test : cases )
  {
    for ( const auto& m : methods )
    {
      const auto start = clock::now();
      auto circuit = m.synthesize( test.target );
      const double elapsed_us =
          std::chrono::duration<double, std::micro>( clock::now() - start ).count();
      circuit = revsimp( circuit );

      bool verified = true;
      for ( uint64_t x = 0u; x < test.target.size(); ++x )
      {
        if ( circuit.simulate( x ) != test.target[x] )
        {
          verified = false;
          break;
        }
      }
      all_verified = all_verified && verified;

      clifford_t_options options;
      const auto mapped = map_to_clifford_t( circuit, options );
      const auto stats = compute_statistics( mapped.circuit );

      std::printf( "%-10s %-9s %-7zu %-9llu %-7llu %-9llu %-10.1f%s\n", test.name.c_str(),
                   m.name.c_str(), circuit.num_gates(),
                   static_cast<unsigned long long>( circuit.control_count() ),
                   static_cast<unsigned long long>( circuit.quantum_cost() ),
                   static_cast<unsigned long long>( stats.t_count ), elapsed_us,
                   verified ? "" : "  VERIFY-FAIL" );
    }
  }
  return all_verified ? 0 : 1;
}
