/*! \file bench_fig10_qsharp_flow.cpp
 *  \brief Experiment E5: the Q# pre-processing flow (paper Sec. VIII).
 *
 *  RevKit compiles the permutation oracle ahead of time and emits Q#
 *  native code (paper Fig. 10).  We regenerate that code for
 *  pi = [0,2,3,5,7,1,4,6], check it uses exactly the gate vocabulary of
 *  Fig. 10 (H, T, Adjoint T, CNOT + the auto variants), and verify the
 *  emitted gate stream implements the permutation.
 */
#include "core/oracles.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "quantum/qsharp.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <cstdio>
#include <string>

int main()
{
  using namespace qda;

  const auto pi = paper_fig7_permutation();
  const auto reversible = transformation_based_synthesis( pi );
  const auto mapped = map_to_clifford_t( reversible );
  const auto polished = peephole_optimize( phase_folding( mapped.circuit ) );

  const auto code = write_qsharp_perm_oracle_namespace( polished, 3u );

  std::printf( "E5: Q# pre-processing flow (Fig. 9/10)\n\n%s\n", code.c_str() );

  const auto count_occurrences = [&]( const std::string& needle ) {
    size_t count = 0u;
    for ( size_t pos = code.find( needle ); pos != std::string::npos;
          pos = code.find( needle, pos + 1u ) )
    {
      ++count;
    }
    return count;
  };

  std::printf( "emitted gate profile:\n" );
  std::printf( "  CNOT(...)    : %zu\n", count_occurrences( "CNOT(" ) );
  std::printf( "  H(...)       : %zu\n", count_occurrences( "H(qubits" ) );
  std::printf( "  T(...)       : %zu\n", count_occurrences( "T(qubits" ) );
  std::printf( "  (Adjoint T)  : %zu\n", count_occurrences( "(Adjoint T)(" ) );
  std::printf( "  variants     : adjoint/controlled auto present = %s\n",
               code.find( "adjoint auto" ) != std::string::npos ? "yes" : "NO" );

  const bool semantics_ok = circuit_implements_permutation( polished, pi.images(),
                                                            /*up_to_phase=*/true );
  std::printf( "semantic check: emitted gate stream implements pi = %s\n",
               semantics_ok ? "yes" : "NO" );

  const bool vocabulary_ok = count_occurrences( "CNOT(" ) > 0u &&
                             code.find( "namespace Microsoft.Quantum.PermOracle" ) !=
                                 std::string::npos &&
                             code.find( "BentFunction" ) != std::string::npos;
  return semantics_ok && vocabulary_ok ? 0 : 1;
}
