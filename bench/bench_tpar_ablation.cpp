/*! \file bench_tpar_ablation.cpp
 *  \brief Experiment E7: T-count optimization ablation (`tpar` stage).
 *
 *  Quantifies the effect of the two T-cost levers of the Eq. (5)
 *  pipeline: relative-phase Toffoli mapping (rptm) and phase folding
 *  (tpar).  For each benchmark the table reports the T-count with
 *  plain 7-T mapping, with rptm, and with rptm + tpar, plus the CNOT
 *  count after Patel-Markov-Hayes resynthesis of linear regions.
 *  All variants are verified equivalent.
 */
#include "core/flow.hpp"
#include "optimization/linear_synthesis.hpp"
#include "synthesis/revgen.hpp"

#include <cstdio>
#include <string>
#include <vector>

int main()
{
  using namespace qda;

  struct named_case
  {
    std::string name;
    permutation target;
  };
  std::vector<named_case> cases{
      { "hwb-4", hwb_permutation( 4u ) },
      { "hwb-5", hwb_permutation( 5u ) },
      { "hwb-6", hwb_permutation( 6u ) },
      { "gray-5", gray_code_permutation( 5u ) },
      { "add7-5", modular_adder_permutation( 5u, 7u ) },
      { "fig7-pi", paper_fig7_permutation() },
      { "rand5", permutation::random( 5u, 99u ) } };

  std::printf( "E7: T-count ablation -- plain vs rptm vs rptm+tpar\n" );
  std::printf( "%-9s %-10s %-9s %-14s %-10s %-12s\n", "case", "plain-T", "rptm-T",
               "rptm+tpar-T", "CNOT", "CNOT+pmh" );

  bool all_ok = true;
  for ( const auto& test : cases )
  {
    flow plain;
    plain.revgen( test.target ).tbs().revsimp().rptm( /*use_relative_phase=*/false );
    const auto plain_t = plain.ps().t_count;

    flow with_rptm;
    with_rptm.revgen( test.target ).tbs().revsimp().rptm( /*use_relative_phase=*/true );
    const auto rptm_t = with_rptm.ps().t_count;

    flow full;
    full.revgen( test.target ).tbs().revsimp().rptm().tpar();
    const auto full_stats = full.ps();

    const auto resynthesized = resynthesize_linear_regions( full.quantum() );
    const auto pmh_cnots = compute_statistics( resynthesized ).cnot_count;

    const bool ok = test.target.num_vars() > 6u ||
                    ( plain.verify() && with_rptm.verify() && full.verify() );
    all_ok = all_ok && ok;

    std::printf( "%-9s %-10llu %-9llu %-14llu %-10llu %-12llu%s\n", test.name.c_str(),
                 static_cast<unsigned long long>( plain_t ),
                 static_cast<unsigned long long>( rptm_t ),
                 static_cast<unsigned long long>( full_stats.t_count ),
                 static_cast<unsigned long long>( full_stats.cnot_count ),
                 static_cast<unsigned long long>( pmh_cnots ), ok ? "" : "  VERIFY-FAIL" );
  }
  std::printf( "\nreading: rptm cuts the T-count of every multi-controlled cascade;\n"
               "tpar folds the remaining mergeable phases (paper refs [42], [69]).\n" );
  return all_ok ? 0 : 1;
}
