/*! \file bench_tpar_ablation.cpp
 *  \brief Experiment E7: T-count optimization ablation (`tpar` stage).
 *
 *  Quantifies the effect of the three T/CNOT-cost levers of the
 *  Eq. (5) pipeline: relative-phase Toffoli mapping (rptm), phase
 *  folding (`tpar --fold-only`), and parity-network resynthesis (the
 *  full `tpar`).  For each benchmark the table reports T-count and
 *  CNOT count with plain 7-T mapping, with rptm, with rptm + fold,
 *  and with rptm + full tpar.  All variants are verified equivalent,
 *  and the per-case numbers are written to BENCH_tpar.json for
 *  cross-PR quality tracking.  The run fails if resynthesis ever
 *  raises the T-count over fold-only.
 */
#include "core/flow.hpp"
#include "synthesis/revgen.hpp"
#include "telemetry/metadata.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace
{

struct variant_stats
{
  unsigned long long t = 0u;
  unsigned long long cnot = 0u;
  unsigned long long gates = 0u;
};

variant_stats stats_of( const qda::flow& pipeline )
{
  const auto stats = pipeline.ps();
  return { stats.t_count, stats.cnot_count, stats.num_gates };
}

void print_json_variant( std::FILE* json, const char* name, const variant_stats& stats,
                         bool last )
{
  std::fprintf( json,
                "      \"%s\": { \"t\": %llu, \"cnot\": %llu, \"gates\": %llu }%s\n", name,
                stats.t, stats.cnot, stats.gates, last ? "" : "," );
}

} // namespace

int main()
{
  using namespace qda;

  struct named_case
  {
    std::string name;
    permutation target;
  };
  std::vector<named_case> cases{
      { "hwb-4", hwb_permutation( 4u ) },
      { "hwb-5", hwb_permutation( 5u ) },
      { "hwb-6", hwb_permutation( 6u ) },
      { "gray-5", gray_code_permutation( 5u ) },
      { "add7-5", modular_adder_permutation( 5u, 7u ) },
      { "fig7-pi", paper_fig7_permutation() },
      { "rand5", permutation::random( 5u, 99u ) } };

  std::printf( "E7: T-count ablation -- plain vs rptm vs rptm+tpar vs +resynth\n" );
  std::printf( "%-9s %-9s %-8s %-8s %-8s %-10s %-10s\n", "case", "plain-T", "rptm-T",
               "fold-T", "full-T", "fold-CNOT", "full-CNOT" );

  std::FILE* json = std::fopen( "BENCH_tpar.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_tpar.json for writing\n" );
    return 1;
  }
  std::fprintf( json, "{\n  \"experiment\": \"tpar_ablation\",\n  %s,\n  \"cases\": [\n",
                telemetry::bench_metadata_json().c_str() );

  bool all_ok = true;
  for ( size_t index = 0u; index < cases.size(); ++index )
  {
    const auto& test = cases[index];

    flow plain;
    plain.revgen( test.target ).tbs().revsimp().rptm( /*use_relative_phase=*/false );
    const auto plain_stats = stats_of( plain );

    flow with_rptm;
    with_rptm.revgen( test.target ).tbs().revsimp().rptm();
    const auto rptm_stats = stats_of( with_rptm );

    flow fold_only;
    fold_only.revgen( test.target ).tbs().revsimp().rptm().tpar( /*resynth=*/false );
    const auto fold_stats = stats_of( fold_only );

    flow full;
    full.revgen( test.target ).tbs().revsimp().rptm().tpar();
    const auto full_stats = stats_of( full );

    const bool verified = test.target.num_vars() > 6u ||
                          ( plain.verify() && with_rptm.verify() && fold_only.verify() &&
                            full.verify() );
    /* resynthesis re-emits the folded terms: it must never cost T gates */
    const bool t_ok = full_stats.t <= fold_stats.t;
    all_ok = all_ok && verified && t_ok;

    std::printf( "%-9s %-9llu %-8llu %-8llu %-8llu %-10llu %-10llu%s%s\n",
                 test.name.c_str(), plain_stats.t, rptm_stats.t, fold_stats.t, full_stats.t,
                 fold_stats.cnot, full_stats.cnot, verified ? "" : "  VERIFY-FAIL",
                 t_ok ? "" : "  T-REGRESSION" );

    std::fprintf( json, "    { \"name\": \"%s\", \"verified\": %s,\n", test.name.c_str(),
                  verified ? "true" : "false" );
    print_json_variant( json, "plain", plain_stats, false );
    print_json_variant( json, "rptm", rptm_stats, false );
    print_json_variant( json, "rptm_tpar", fold_stats, false );
    print_json_variant( json, "rptm_tpar_resynth", full_stats, true );
    std::fprintf( json, "    }%s\n", index + 1u < cases.size() ? "," : "" );
  }
  std::fprintf( json, "  ]\n}\n" );
  std::fclose( json );

  std::printf( "\nreading: rptm cuts the T-count of every multi-controlled cascade;\n"
               "tpar folds the remaining mergeable phases and resynthesis rebuilds\n"
               "each region's CNOT skeleton (paper refs [42], [69]).\n" );
  std::printf( "wrote BENCH_tpar.json\n" );
  return all_ok ? 0 : 1;
}
