/*! \file bench_fig8_mm_hidden_shift.cpp
 *  \brief Experiment E4: the Fig. 7/Fig. 8 Maiorana-McFarland instance.
 *
 *  f(x, y) = x . pi(y) with pi = [0, 2, 3, 5, 7, 1, 4, 6] over six
 *  qubits, hidden shift s = 5.  The paper compiles pi with
 *  transformation-based synthesis and the inverse permutation with
 *  decomposition-based synthesis inside a Dagger block; the resulting
 *  circuit (Fig. 8) contains four permutation subcircuits.  We report
 *  the per-oracle gate counts at MCT and Clifford+T level, the final
 *  statistics, and the recovered shift.
 */
#include "core/bent.hpp"
#include "core/hidden_shift.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/phase_folding.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto f = mm_bent_function::paper_fig7();
  const auto pi = f.pi;

  std::printf( "E4: Fig. 7/8 -- pi = [0,2,3,5,7,1,4,6], s = 5, 6 qubits\n\n" );

  /* the four dashed boxes of Fig. 8: pi (tbs), pi^-1 (tbs reversed),
   * pi^-1 (dbs, daggered), pi (dbs) */
  const auto tbs_circuit = transformation_based_synthesis( pi );
  const auto dbs_circuit = decomposition_based_synthesis( pi );
  const auto tbs_mapped = map_to_clifford_t( tbs_circuit );
  const auto dbs_mapped = map_to_clifford_t( dbs_circuit );
  const auto tbs_stats = compute_statistics( phase_folding( tbs_mapped.circuit ) );
  const auto dbs_stats = compute_statistics( phase_folding( dbs_mapped.circuit ) );

  std::printf( "%-28s %-10s %-9s %-8s %-8s\n", "permutation oracle", "MCT-gates", "T-count",
               "H", "CNOT" );
  std::printf( "%-28s %-10zu %-9llu %-8llu %-8llu\n", "pi via tbs (Fig. 7 l.23)",
               tbs_circuit.num_gates(), static_cast<unsigned long long>( tbs_stats.t_count ),
               static_cast<unsigned long long>( tbs_stats.h_count ),
               static_cast<unsigned long long>( tbs_stats.cnot_count ) );
  std::printf( "%-28s %-10zu %-9llu %-8llu %-8llu\n", "pi via dbs (Fig. 7 l.29)",
               dbs_circuit.num_gates(), static_cast<unsigned long long>( dbs_stats.t_count ),
               static_cast<unsigned long long>( dbs_stats.h_count ),
               static_cast<unsigned long long>( dbs_stats.cnot_count ) );

  const auto circuit = hidden_shift_circuit_mm( f, 5u, permutation_synthesis::tbs,
                                                permutation_synthesis::dbs );
  std::printf( "\nfull circuit: %s\n",
               format_statistics( compute_statistics( circuit ) ).c_str() );

  const uint64_t shift = solve_hidden_shift( circuit );
  std::printf( "Shift is %llu\n", static_cast<unsigned long long>( shift ) );

  uint32_t exact = 0u;
  for ( uint64_t s = 0u; s < 64u; ++s )
  {
    if ( solve_hidden_shift( hidden_shift_circuit_mm( f, s ) ) == s )
    {
      ++exact;
    }
  }
  std::printf( "shift sweep: %u/64 recovered deterministically\n", exact );
  return shift == 5u && exact == 64u ? 0 : 1;
}
