/*! \file bench_optimality_gap.cpp
 *  \brief Experiment E13 (extension): optimality gap of heuristic synthesis.
 *
 *  Exhaustive quality evaluation in the classic reversible-logic-
 *  synthesis style (paper refs [43], [47], [49]): all 40320 3-line
 *  permutations synthesized optimally (BFS) and by the heuristics;
 *  the table reports average/maximum gate counts and how often each
 *  heuristic attains the optimum.
 */
#include "optimization/revsimp.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/exact.hpp"
#include "synthesis/transformation_based.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

int main()
{
  using namespace qda;

  const exact_synthesizer optimal( 3u );

  struct method_stats
  {
    const char* name;
    std::function<rev_circuit( const permutation& )> synthesize;
    uint64_t total_gates = 0u;
    uint64_t worst = 0u;
    uint64_t hits_optimum = 0u;
  };
  std::vector<method_stats> methods{
      { "tbs", transformation_based_synthesis, 0u, 0u, 0u },
      { "tbs-bidi", transformation_based_synthesis_bidirectional, 0u, 0u, 0u },
      { "dbs", decomposition_based_synthesis, 0u, 0u, 0u },
      { "tbs+revsimp",
        []( const permutation& pi ) { return revsimp( transformation_based_synthesis( pi ) ); },
        0u, 0u, 0u } };

  uint64_t optimal_total = 0u;
  uint64_t optimal_worst = 0u;
  uint64_t count = 0u;

  std::vector<uint64_t> images{ 0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u };
  do
  {
    const auto pi = permutation::from_vector( images );
    const uint32_t optimum = optimal.optimal_gate_count( pi );
    optimal_total += optimum;
    optimal_worst = std::max<uint64_t>( optimal_worst, optimum );
    ++count;
    for ( auto& method : methods )
    {
      const auto gates = method.synthesize( pi ).num_gates();
      method.total_gates += gates;
      method.worst = std::max<uint64_t>( method.worst, gates );
      if ( gates == optimum )
      {
        ++method.hits_optimum;
      }
    }
  } while ( std::next_permutation( images.begin(), images.end() ) );

  std::printf( "E13: optimality gap over all %llu 3-line permutations\n",
               static_cast<unsigned long long>( count ) );
  std::printf( "%-12s %-10s %-7s %-12s\n", "method", "avg-gates", "worst", "optimal-rate" );
  std::printf( "%-12s %-10.3f %-7llu %-12s\n", "exact (BFS)",
               static_cast<double>( optimal_total ) / static_cast<double>( count ),
               static_cast<unsigned long long>( optimal_worst ), "1.000" );
  for ( const auto& method : methods )
  {
    std::printf( "%-12s %-10.3f %-7llu %-12.3f\n", method.name,
                 static_cast<double>( method.total_gates ) / static_cast<double>( count ),
                 static_cast<unsigned long long>( method.worst ),
                 static_cast<double>( method.hits_optimum ) / static_cast<double>( count ) );
  }
  std::printf( "\nreading: heuristics trade gate count for scalability; the gap to the\n"
               "optimum on complete 3-line enumeration quantifies the trade.\n" );
  return 0;
}
