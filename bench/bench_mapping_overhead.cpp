/*! \file bench_mapping_overhead.cpp
 *  \brief Experiment E10: coupling-map routing overhead.
 *
 *  Ablation of the Fig. 6 pipeline's hardware-mapping stage: the same
 *  logical circuits routed onto IBM QX2, QX4, QX5, a line and a fully
 *  connected device.  Reports inserted SWAPs, CNOT direction fixes and
 *  the growth in CNOT count and depth -- the overhead a real chip pays
 *  relative to the logical circuit.
 */
#include "core/hidden_shift.hpp"
#include "mapping/router.hpp"
#include "optimization/peephole.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"
#include "mapping/clifford_t.hpp"

#include <cstdio>
#include <string>
#include <vector>

int main()
{
  using namespace qda;

  struct logical_case
  {
    std::string name;
    qcircuit circuit;
  };

  std::vector<logical_case> cases;
  {
    const auto f = inner_product_function( 2u, /*interleaved=*/true );
    cases.push_back( { "hs-fig5 (4q)", hidden_shift_circuit( { f, 1u } ) } );
  }
  {
    const auto reversible = transformation_based_synthesis( hwb_permutation( 4u ) );
    auto mapped = map_to_clifford_t( reversible );
    mapped.circuit.measure_all();
    cases.push_back( { "hwb4-cliff (5q)", std::move( mapped.circuit ) } );
  }
  {
    const auto f = mm_bent_function::paper_fig7();
    const auto logical = hidden_shift_circuit_mm( f, 5u );
    auto lowered = lower_multi_controlled_gates( logical );
    cases.push_back( { "hs-fig8 (6q)", std::move( lowered.circuit ) } );
  }

  std::vector<coupling_map> devices{ coupling_map::ibm_qx2(), coupling_map::ibm_qx4(),
                                     coupling_map::ibm_qx5(), coupling_map::linear( 16u ),
                                     coupling_map::fully_connected( 16u ) };

  std::printf( "E10: routing overhead per device\n" );
  std::printf( "%-16s %-10s %-7s %-9s %-12s %-12s %-12s\n", "circuit", "device", "swaps",
               "dirfixes", "2q-logical", "CNOT-phys", "depth-phys" );

  for ( const auto& test : cases )
  {
    const auto logical_stats = compute_statistics( test.circuit );
    for ( const auto& device : devices )
    {
      if ( test.circuit.num_qubits() > device.num_qubits() )
      {
        continue;
      }
      const auto routed = route_circuit( test.circuit, device );
      const auto polished = peephole_optimize( routed.circuit );
      const auto physical_stats = compute_statistics( polished );
      std::printf( "%-16s %-10s %-7llu %-9llu %-12llu %-12llu %-12llu\n", test.name.c_str(),
                   device.name().c_str(),
                   static_cast<unsigned long long>( routed.added_swaps ),
                   static_cast<unsigned long long>( routed.added_direction_fixes ),
                   static_cast<unsigned long long>( logical_stats.two_qubit_count ),
                   static_cast<unsigned long long>( physical_stats.cnot_count ),
                   static_cast<unsigned long long>( physical_stats.depth ) );
    }
  }
  std::printf( "\nreading: restricted, directed topologies (qx4) pay SWAPs and H-conjugation;\n"
               "all-to-all coupling routes for free.\n" );
  return 0;
}
