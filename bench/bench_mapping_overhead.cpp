/*! \file bench_mapping_overhead.cpp
 *  \brief Experiment E10: hardware-mapping quality (BENCH_map.json).
 *
 *  Two ablations of the Fig. 6 pipeline's mapping stage on hwb and
 *  hidden-shift workloads:
 *
 *  1. MCT lowering strategies: T/CNOT/H/depth and helper-qubit cost of
 *     the clean V-chain (with and without relative phase), the Barenco
 *     dirty-ancilla chain, the ancilla-free recursive split and the
 *     automatic cost-model selection.
 *  2. Routers: SWAPs, direction fixes, CNOTs and depth of the greedy
 *     baseline vs the SABRE lookahead router across IBM QX2/QX4/QX5, a
 *     16-qubit line and an all-to-all device.
 *
 *  Emits BENCH_map.json and (outside QDA_BENCH_SMOKE) enforces the
 *  no-regression floor: SABRE must insert >= 25% fewer SWAPs than the
 *  greedy baseline in aggregate.
 */
#include "core/hidden_shift.hpp"
#include "mapping/clifford_t.hpp"
#include "mapping/router.hpp"
#include "optimization/peephole.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"
#include "telemetry/metadata.hpp"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

int main()
{
  using namespace qda;

  const char* smoke_env = std::getenv( "QDA_BENCH_SMOKE" );
  const bool smoke = smoke_env != nullptr && std::string( smoke_env ) == "1";

  /* ---- workloads ---- */

  struct rev_workload
  {
    std::string name;
    rev_circuit circuit;
  };
  struct quantum_workload
  {
    std::string name;
    qcircuit circuit;
  };

  std::vector<rev_workload> rev_workloads;
  rev_workloads.push_back( { "hwb4", transformation_based_synthesis( hwb_permutation( 4u ) ) } );
  if ( !smoke )
  {
    rev_workloads.push_back(
        { "hwb6", transformation_based_synthesis( hwb_permutation( 6u ) ) } );
  }

  std::vector<quantum_workload> quantum_workloads;
  {
    const auto f = inner_product_function( 2u, /*interleaved=*/true );
    quantum_workloads.push_back( { "hs-fig5", hidden_shift_circuit( { f, 1u } ) } );
  }
  {
    const auto f = mm_bent_function::paper_fig7();
    quantum_workloads.push_back( { "hs-fig8", hidden_shift_circuit_mm( f, 5u ) } );
  }

  /* ---- 1. lowering strategies ---- */

  struct strategy_row
  {
    std::string workload;
    std::string strategy;
    circuit_statistics stats;
    uint32_t helpers;
  };
  std::vector<strategy_row> strategy_rows;

  struct strategy_config
  {
    const char* label;
    mct_strategy strategy;
    bool relative_phase;
  };
  const std::vector<strategy_config> strategy_configs{
      { "clean-rp", mct_strategy::clean, true },
      { "clean", mct_strategy::clean, false },
      { "dirty", mct_strategy::dirty, true },
      { "recursive", mct_strategy::recursive, true },
      { "auto", mct_strategy::automatic, true },
  };

  std::printf( "E10a: MCT lowering strategies (infeasible strategies fall back per gate)\n" );
  std::printf( "%-10s %-10s %-7s %-8s %-8s %-8s %-8s %-8s\n", "workload", "strategy", "qubits",
               "helpers", "T", "CNOT", "H", "depth" );
  const auto record_strategy = [&]( const std::string& workload, const char* label,
                                    const clifford_t_result& mapped ) {
    const auto stats = compute_statistics( mapped.circuit );
    strategy_rows.push_back( { workload, label, stats, mapped.num_helper_qubits } );
    std::printf( "%-10s %-10s %-7u %-8u %-8llu %-8llu %-8llu %-8llu\n", workload.c_str(), label,
                 stats.num_qubits, mapped.num_helper_qubits,
                 static_cast<unsigned long long>( stats.t_count ),
                 static_cast<unsigned long long>( stats.cnot_count ),
                 static_cast<unsigned long long>( stats.h_count ),
                 static_cast<unsigned long long>( stats.depth ) );
  };
  for ( const auto& workload : rev_workloads )
  {
    for ( const auto& config : strategy_configs )
    {
      clifford_t_options options;
      options.strategy = config.strategy;
      options.use_relative_phase = config.relative_phase;
      record_strategy( workload.name, config.label,
                       map_to_clifford_t( workload.circuit, options ) );
    }
  }
  for ( const auto& workload : quantum_workloads )
  {
    for ( const auto& config : strategy_configs )
    {
      clifford_t_options options;
      options.strategy = config.strategy;
      options.use_relative_phase = config.relative_phase;
      record_strategy( workload.name, config.label,
                       lower_multi_controlled_gates( workload.circuit, options ) );
    }
  }

  /* ---- 2. routers ---- */

  struct routed_workload
  {
    std::string name;
    qcircuit circuit;
  };
  std::vector<routed_workload> routed_workloads;
  for ( const auto& workload : rev_workloads )
  {
    auto mapped = map_to_clifford_t( workload.circuit );
    mapped.circuit.measure_all();
    routed_workloads.push_back( { workload.name + "-cliff", std::move( mapped.circuit ) } );
  }
  for ( const auto& workload : quantum_workloads )
  {
    auto lowered = lower_multi_controlled_gates( workload.circuit );
    routed_workloads.push_back( { workload.name, std::move( lowered.circuit ) } );
  }

  std::vector<coupling_map> devices{ coupling_map::ibm_qx2(), coupling_map::ibm_qx4(),
                                     coupling_map::ibm_qx5(), coupling_map::linear( 16u ),
                                     coupling_map::fully_connected( 16u ) };

  struct routing_row
  {
    std::string workload;
    std::string device;
    std::string router;
    uint64_t swaps;
    uint64_t direction_fixes;
    circuit_statistics stats;
  };
  std::vector<routing_row> routing_rows;
  uint64_t greedy_total_swaps = 0u;
  uint64_t sabre_total_swaps = 0u;

  std::printf( "\nE10b: routing overhead per device and router\n" );
  std::printf( "%-14s %-10s %-8s %-7s %-9s %-12s %-12s\n", "circuit", "device", "router",
               "swaps", "dirfixes", "CNOT-phys", "depth-phys" );
  for ( const auto& workload : routed_workloads )
  {
    for ( const auto& device : devices )
    {
      if ( workload.circuit.num_qubits() > device.num_qubits() )
      {
        continue;
      }
      for ( const auto router : { router_kind::greedy, router_kind::sabre } )
      {
        router_options options;
        options.kind = router;
        const auto routed = route_circuit( workload.circuit, device, options );
        const auto polished = peephole_optimize( routed.circuit );
        const auto stats = compute_statistics( polished );
        routing_rows.push_back( { workload.name, device.name(), router_kind_name( router ),
                                  routed.added_swaps, routed.added_direction_fixes, stats } );
        if ( router == router_kind::greedy )
        {
          greedy_total_swaps += routed.added_swaps;
        }
        else
        {
          sabre_total_swaps += routed.added_swaps;
        }
        std::printf( "%-14s %-10s %-8s %-7llu %-9llu %-12llu %-12llu\n", workload.name.c_str(),
                     device.name().c_str(), router_kind_name( router ),
                     static_cast<unsigned long long>( routed.added_swaps ),
                     static_cast<unsigned long long>( routed.added_direction_fixes ),
                     static_cast<unsigned long long>( stats.cnot_count ),
                     static_cast<unsigned long long>( stats.depth ) );
      }
    }
  }

  const double reduction =
      greedy_total_swaps == 0u
          ? 0.0
          : 100.0 * ( 1.0 - static_cast<double>( sabre_total_swaps ) /
                                static_cast<double>( greedy_total_swaps ) );
  std::printf( "\ntotal SWAPs: greedy %llu, sabre %llu (%.1f%% fewer; floor 25%%)\n",
               static_cast<unsigned long long>( greedy_total_swaps ),
               static_cast<unsigned long long>( sabre_total_swaps ), reduction );

  /* ---- BENCH_map.json ---- */

  std::FILE* json = std::fopen( "BENCH_map.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_map.json for writing\n" );
    return 1;
  }
  std::fprintf( json, "{\n  \"experiment\": \"mapping_overhead\",\n  %s,\n  \"smoke\": %s,\n  \"strategies\": [\n",
                telemetry::bench_metadata_json().c_str(), smoke ? "true" : "false" );
  for ( size_t i = 0u; i < strategy_rows.size(); ++i )
  {
    const auto& row = strategy_rows[i];
    std::fprintf( json,
                  "    {\"workload\": \"%s\", \"strategy\": \"%s\", \"qubits\": %u, "
                  "\"helpers\": %u, \"t\": %llu, \"cnot\": %llu, \"h\": %llu, "
                  "\"depth\": %llu}%s\n",
                  row.workload.c_str(), row.strategy.c_str(), row.stats.num_qubits, row.helpers,
                  static_cast<unsigned long long>( row.stats.t_count ),
                  static_cast<unsigned long long>( row.stats.cnot_count ),
                  static_cast<unsigned long long>( row.stats.h_count ),
                  static_cast<unsigned long long>( row.stats.depth ),
                  i + 1u < strategy_rows.size() ? "," : "" );
  }
  std::fprintf( json, "  ],\n  \"routing\": [\n" );
  for ( size_t i = 0u; i < routing_rows.size(); ++i )
  {
    const auto& row = routing_rows[i];
    std::fprintf( json,
                  "    {\"workload\": \"%s\", \"device\": \"%s\", \"router\": \"%s\", "
                  "\"swaps\": %llu, \"direction_fixes\": %llu, \"cnot\": %llu, "
                  "\"t\": %llu, \"depth\": %llu}%s\n",
                  row.workload.c_str(), row.device.c_str(), row.router.c_str(),
                  static_cast<unsigned long long>( row.swaps ),
                  static_cast<unsigned long long>( row.direction_fixes ),
                  static_cast<unsigned long long>( row.stats.cnot_count ),
                  static_cast<unsigned long long>( row.stats.t_count ),
                  static_cast<unsigned long long>( row.stats.depth ),
                  i + 1u < routing_rows.size() ? "," : "" );
  }
  std::fprintf( json,
                "  ],\n  \"summary\": {\"greedy_swaps\": %llu, \"sabre_swaps\": %llu, "
                "\"swap_reduction_percent\": %.2f, \"floor_percent\": 25.0}\n}\n",
                static_cast<unsigned long long>( greedy_total_swaps ),
                static_cast<unsigned long long>( sabre_total_swaps ), reduction );
  std::fclose( json );
  std::printf( "wrote BENCH_map.json\n" );

  if ( !smoke && reduction < 25.0 )
  {
    std::printf( "FAIL: SABRE swap reduction %.1f%% is below the 25%% floor\n", reduction );
    return 1;
  }
  return 0;
}
