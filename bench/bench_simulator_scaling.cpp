/*! \file bench_simulator_scaling.cpp
 *  \brief Experiment E9: simulation engine throughput (before/after).
 *
 *  Context for the paper's Sec. I discussion of classical simulability
 *  (45 qubits needed 0.5 PB on a supercomputer): the whole
 *  design-automation loop executes compiled circuits on the local
 *  simulators, so simulation throughput bounds every Fig. 6 / Fig. 8
 *  experiment.  This bench measures the high-throughput engine against
 *  the naive scalar reference on three axes and writes the numbers to
 *  BENCH_sim.json for cross-PR tracking:
 *
 *   1. end-to-end state-vector gate throughput on random layered
 *      circuits (the tracked 20-qubit workload, plus a brickwork
 *      variant that limits cross-layer fusion);
 *   2. per-kernel microbenchmarks (generic 2x2 vs specialized
 *      diagonal / permutation / bit-deposit-controlled kernels);
 *   3. multi-shot sampling: cumulative-distribution sampling vs
 *      per-shot O(2^n) scans, and the stabilizer snapshot sampler vs
 *      per-shot circuit re-runs.
 *
 *  The run fails (exit 1) if the fused engine misses its speedup
 *  floors: >= 5x end-to-end on the 20-qubit layered workload and
 *  >= 10x on stabilizer_sample_counts at 8192 shots.
 */
#include "core/hidden_shift.hpp"
#include "simulator/fusion.hpp"
#include "simulator/kernels.hpp"
#include "simulator/simd.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"
#include "telemetry/metadata.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

namespace
{

using namespace qda;
using clock_type = std::chrono::steady_clock;

double seconds_of( const std::function<void()>& body, uint32_t min_reps = 1u,
                   double min_time = 0.1 )
{
  double best = 1e100;
  double total = 0.0;
  uint32_t reps = 0u;
  while ( reps < min_reps || total < min_time )
  {
    const auto start = clock_type::now();
    body();
    const double elapsed =
        std::chrono::duration_cast<std::chrono::duration<double>>( clock_type::now() - start )
            .count();
    best = std::min( best, elapsed );
    total += elapsed;
    ++reps;
    if ( reps >= 64u )
    {
      break;
    }
  }
  return best;
}

qcircuit random_layered_circuit( uint32_t num_qubits, uint32_t num_layers, uint64_t seed,
                                 bool brickwork = false )
{
  std::mt19937_64 rng( seed );
  qcircuit circuit( num_qubits );
  for ( uint32_t layer = 0u; layer < num_layers; ++layer )
  {
    for ( uint32_t q = 0u; q < num_qubits; ++q )
    {
      switch ( rng() % 3u )
      {
      case 0u: circuit.h( q ); break;
      case 1u: circuit.t( q ); break;
      default: circuit.rz( q, 0.3 ); break;
      }
    }
    /* fixed pairs in the tracked workload; the brickwork variant
     * alternates the pair offset so dense blocks cannot chain across
     * layers on one pair */
    const uint32_t offset = brickwork ? layer & 1u : 0u;
    for ( uint32_t q = offset; q + 1u < num_qubits; q += 2u )
    {
      if ( layer & 1u )
      {
        circuit.cx( q + 1u, q );
      }
      else
      {
        circuit.cx( q, q + 1u );
      }
    }
  }
  return circuit;
}

struct end_to_end_result
{
  uint32_t num_qubits = 0u;
  uint64_t gates = 0u;
  double naive_s = 0.0;
  double fused_s = 0.0;
  double speedup() const { return naive_s / fused_s; }
  double fused_gates_per_s() const { return static_cast<double>( gates ) / fused_s; }
  double naive_gates_per_s() const { return static_cast<double>( gates ) / naive_s; }
};

end_to_end_result bench_end_to_end( uint32_t num_qubits, bool brickwork )
{
  const auto circuit = random_layered_circuit( num_qubits, 8u, 42u, brickwork );
  end_to_end_result result;
  result.num_qubits = num_qubits;
  result.gates = circuit.num_gates();
  statevector_simulator check_fused( num_qubits );
  check_fused.run( circuit );
  statevector_simulator check_naive( num_qubits );
  check_naive.run_naive( circuit );
  double worst = 0.0;
  for ( uint64_t i = 0u; i < check_fused.state().size(); ++i )
  {
    worst = std::max( worst, std::abs( check_fused.state()[i] - check_naive.state()[i] ) );
  }
  if ( worst > 1e-12 )
  {
    std::printf( "E9: VERIFY-FAIL fused/naive deviate by %.3g at %u qubits\n", worst,
                 num_qubits );
    std::exit( 1 );
  }
  result.naive_s = seconds_of( [&] {
    statevector_simulator simulator( num_qubits );
    simulator.run_naive( circuit );
  } );
  result.fused_s = seconds_of( [&] {
    statevector_simulator simulator( num_qubits );
    simulator.run( circuit );
  } );
  return result;
}

struct kernel_result
{
  std::string name;
  double naive_ns_per_amp = 0.0;
  double fast_ns_per_amp = 0.0;
};

/*! Times `reps` applications of one gate through the naive generic
 *  matmul and through the specialized kernel dispatch. */
kernel_result bench_kernel( const std::string& name, const qgate& gate, uint32_t num_qubits,
                            uint32_t reps )
{
  const double amps = static_cast<double>( uint64_t{ 1 } << num_qubits ) * reps;
  kernel_result result;
  result.name = name;
  qcircuit circuit( num_qubits );
  for ( uint32_t i = 0u; i < reps; ++i )
  {
    circuit.add_gate( gate );
  }
  statevector_simulator naive( num_qubits );
  result.naive_ns_per_amp = 1e9 * seconds_of( [&] { naive.run_naive( circuit ); } ) / amps;
  statevector_simulator fast( num_qubits );
  result.fast_ns_per_amp = 1e9 * seconds_of( [&] {
                             for ( const auto& view : circuit.gates() )
                             {
                               fast.apply_gate( view );
                             }
                           } ) /
                           amps;
  return result;
}

/*! The pre-rework sampler: naive unitary run + per-shot O(2^n) scans. */
std::map<uint64_t, uint64_t> naive_sample_counts( const qcircuit& circuit, uint64_t shots,
                                                  uint64_t seed )
{
  qcircuit unitary_part( circuit.num_qubits() );
  std::vector<uint32_t> measured;
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::measure )
    {
      measured.push_back( gate.target );
    }
    else if ( gate.kind != gate_kind::barrier )
    {
      unitary_part.add_gate( gate );
    }
  }
  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run_naive( unitary_part );
  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    const uint64_t full = simulator.sample( rng );
    uint64_t key = 0u;
    for ( uint32_t i = 0u; i < measured.size(); ++i )
    {
      if ( ( full >> measured[i] ) & 1u )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

/*! The pre-rework stabilizer sampler: fresh tableau + full circuit
 *  re-run per shot (single RNG stream, matching the fixed semantics). */
std::map<uint64_t, uint64_t> naive_stabilizer_counts( const qcircuit& circuit, uint64_t shots,
                                                      uint64_t seed )
{
  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    stabilizer_simulator simulator( circuit.num_qubits() );
    uint64_t key = 0u;
    uint32_t measure_index = 0u;
    for ( const auto& gate : circuit.gates() )
    {
      if ( gate.kind == gate_kind::measure )
      {
        const bool bit = simulator.measure( gate.target, rng );
        if ( bit && measure_index < 64u )
        {
          key |= uint64_t{ 1 } << measure_index;
        }
        ++measure_index;
      }
      else
      {
        simulator.apply_gate( gate );
      }
    }
    ++counts[key];
  }
  return counts;
}

/*! Deep random Clifford circuit with randomized measurements on a few
 *  qubits: the honest per-shot stabilizer sampling workload. */
qcircuit random_clifford_sampling_circuit( uint32_t num_qubits, uint32_t num_gates,
                                           uint32_t measured_qubits, uint64_t seed )
{
  std::mt19937_64 rng( seed );
  qcircuit circuit( num_qubits );
  for ( uint32_t g = 0u; g < num_gates; ++g )
  {
    const uint32_t q = rng() % num_qubits;
    switch ( rng() % 6u )
    {
    case 0u: circuit.h( q ); break;
    case 1u: circuit.s( q ); break;
    case 2u: circuit.x( q ); break;
    case 3u: circuit.cz( q, ( q + 1u + rng() % ( num_qubits - 1u ) ) % num_qubits ); break;
    case 4u: circuit.swap_( q, ( q + 1u ) % num_qubits ); break;
    default: circuit.cx( q, ( q + 1u + rng() % ( num_qubits - 1u ) ) % num_qubits ); break;
    }
  }
  for ( uint32_t m = 0u; m < measured_qubits; ++m )
  {
    circuit.h( m ); /* force random outcomes */
    circuit.measure( m );
  }
  return circuit;
}

} // namespace

int main()
{
  /* QDA_BENCH_SMOKE=1 shrinks every workload so the Debug and
   * sanitizer CI jobs can smoke-run the bench; the tracked numbers and
   * the acceptance floors come from full Release runs */
  const char* smoke_env = std::getenv( "QDA_BENCH_SMOKE" );
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';

  std::printf( "E9: simulation engine throughput (naive reference vs fused engine)%s\n",
               smoke ? " [smoke]" : "" );
  std::printf( "threads: %u (QDA_SIM_THREADS to override), isa: %s (QDA_SIM_ISA to override)\n\n",
               sim::num_threads(), sim::isa_name( sim::active_isa() ) );

  const uint32_t big_qubits = smoke ? 16u : 20u;

  /* ---- 1. end-to-end state-vector throughput ---- */
  std::printf( "%-22s %8s %12s %12s %9s\n", "workload", "gates", "naive Mg/s", "fused Mg/s",
               "speedup" );
  std::vector<end_to_end_result> layered;
  for ( const uint32_t n : std::vector<uint32_t>( smoke ? std::vector<uint32_t>{ 12u, 16u }
                                                        : std::vector<uint32_t>{ 12u, 16u, 20u } ) )
  {
    layered.push_back( bench_end_to_end( n, /*brickwork=*/false ) );
    const auto& r = layered.back();
    std::printf( "%-22s %8llu %12.3f %12.3f %8.1fx\n",
                 ( "layered-" + std::to_string( n ) + "q" ).c_str(),
                 static_cast<unsigned long long>( r.gates ), 1e-6 * r.naive_gates_per_s(),
                 1e-6 * r.fused_gates_per_s(), r.speedup() );
  }
  const auto brickwork = bench_end_to_end( big_qubits, /*brickwork=*/true );
  std::printf( "%-22s %8llu %12.3f %12.3f %8.1fx\n",
               ( "brickwork-" + std::to_string( big_qubits ) + "q" ).c_str(),
               static_cast<unsigned long long>( brickwork.gates ),
               1e-6 * brickwork.naive_gates_per_s(), 1e-6 * brickwork.fused_gates_per_s(),
               brickwork.speedup() );

  /* cross-check the cache-blocked tile schedule against the naive
   * reference.  The default tile size (16 qubits) never kicks in at the
   * smoke workload sizes, so force a small tile here: this keeps the
   * tiled executor covered by the Debug and sanitizer smoke runs too. */
  {
    const auto tiled_circuit = random_layered_circuit( big_qubits, 8u, 42u, /*brickwork=*/true );
    sim::compile_options tiled_options;
    tiled_options.tile_qubits = big_qubits - 6u;
    const auto tiled_program = sim::compile( tiled_circuit, tiled_options );
    bool has_tiled_segment = false;
    for ( const auto& segment : tiled_program.segments )
    {
      has_tiled_segment = has_tiled_segment || segment.tiled;
    }
    if ( !has_tiled_segment )
    {
      std::printf( "E9: VERIFY-FAIL no tiled segment at tile_qubits=%u\n",
                   tiled_options.tile_qubits );
      return 1;
    }
    statevector_simulator tiled_sim( big_qubits );
    tiled_sim.run_program( tiled_program );
    statevector_simulator naive_sim( big_qubits );
    naive_sim.run_naive( tiled_circuit );
    double tiled_worst = 0.0;
    for ( uint64_t i = 0u; i < tiled_sim.state().size(); ++i )
    {
      tiled_worst =
          std::max( tiled_worst, std::abs( tiled_sim.state()[i] - naive_sim.state()[i] ) );
    }
    if ( tiled_worst > 1e-12 )
    {
      std::printf( "E9: VERIFY-FAIL tiled schedule deviates by %.3g at %u qubits\n", tiled_worst,
                   big_qubits );
      return 1;
    }
    std::printf( "tiled schedule (tile_qubits=%u): verified against naive to 1e-12\n",
                 tiled_options.tile_qubits );
  }

  /* ---- 2. per-kernel microbenchmarks ---- */
  std::printf( "\n%-22s %14s %14s %9s\n",
               ( "kernel (" + std::to_string( big_qubits ) + " qubits)" ).c_str(),
               "naive ns/amp", "fast ns/amp", "speedup" );
  std::vector<kernel_result> kernels;
  const auto add_kernel = [&]( const std::string& name, const qgate& gate ) {
    kernels.push_back( bench_kernel( name, gate, big_qubits, smoke ? 2u : 8u ) );
    const auto& k = kernels.back();
    std::printf( "%-22s %14.3f %14.3f %8.1fx\n", k.name.c_str(), k.naive_ns_per_amp,
                 k.fast_ns_per_amp, k.naive_ns_per_amp / k.fast_ns_per_amp );
  };
  qgate gate;
  gate.kind = gate_kind::h;
  gate.target = 3u;
  add_kernel( "h (generic 2x2)", gate );
  gate.kind = gate_kind::x;
  add_kernel( "x (permutation)", gate );
  gate.kind = gate_kind::t;
  add_kernel( "t (masked phase)", gate );
  gate.kind = gate_kind::rz;
  gate.angle = 0.3;
  add_kernel( "rz (diagonal)", gate );
  gate.kind = gate_kind::cx;
  gate.angle = 0.0;
  gate.controls = { 7u };
  add_kernel( "cx (bit-deposit)", gate );
  gate.kind = gate_kind::cz;
  add_kernel( "cz (masked phase)", gate );
  gate.kind = gate_kind::mcx;
  gate.controls = { 7u, 11u, 15u };
  add_kernel( "mcx-3 (bit-deposit)", gate );
  gate.kind = gate_kind::mcz;
  add_kernel( "mcz-3 (masked phase)", gate );

  /* ---- 3. multi-shot sampling ---- */
  const uint64_t shots = smoke ? 512u : 8192u;
  auto sampling_circuit = random_layered_circuit( big_qubits, 4u, 7u );
  sampling_circuit.measure_all();
  const auto fast_counts = sample_counts( sampling_circuit, shots, 11u );
  const auto slow_counts = naive_sample_counts( sampling_circuit, shots, 11u );
  if ( fast_counts != slow_counts )
  {
    std::printf( "E9: VERIFY-FAIL sample_counts disagrees with the naive sampler\n" );
    return 1;
  }
  const double sv_naive_s =
      seconds_of( [&] { naive_sample_counts( sampling_circuit, shots, 11u ); } );
  const double sv_fast_s = seconds_of( [&] { sample_counts( sampling_circuit, shots, 11u ); } );

  /* stabilizer: deterministic Bravyi-Gosset inner-product instance */
  const uint32_t half = smoke ? 8u : 32u;
  std::vector<bool> shift( 2u * half );
  std::mt19937_64 shift_rng( 5u );
  for ( auto&& bit : shift )
  {
    bit = ( shift_rng() & 1u ) != 0u;
  }
  const auto hidden_shift = clifford_hidden_shift_circuit( half, shift );
  const auto st_fast = stabilizer_sample_counts( hidden_shift, shots, 3u );
  const auto st_slow = naive_stabilizer_counts( hidden_shift, shots, 3u );
  if ( st_fast != st_slow )
  {
    std::printf( "E9: VERIFY-FAIL stabilizer snapshot sampler disagrees with re-runs\n" );
    return 1;
  }
  const double st_naive_s =
      seconds_of( [&] { naive_stabilizer_counts( hidden_shift, shots, 3u ); } );
  const double st_fast_s =
      seconds_of( [&] { stabilizer_sample_counts( hidden_shift, shots, 3u ); } );

  /* stabilizer: deep prefix with randomized measurements (per-shot path) */
  const auto clifford_random =
      random_clifford_sampling_circuit( smoke ? 24u : 48u, smoke ? 400u : 2000u, 8u, 13u );
  const auto cr_fast = stabilizer_sample_counts( clifford_random, shots, 9u );
  const auto cr_slow = naive_stabilizer_counts( clifford_random, shots, 9u );
  if ( cr_fast != cr_slow )
  {
    std::printf( "E9: VERIFY-FAIL stabilizer random-measure sampler disagrees\n" );
    return 1;
  }
  const double cr_naive_s =
      seconds_of( [&] { naive_stabilizer_counts( clifford_random, shots, 9u ); } );
  const double cr_fast_s =
      seconds_of( [&] { stabilizer_sample_counts( clifford_random, shots, 9u ); } );

  std::printf( "\n%-34s %11s %11s %9s\n",
               ( "multi-shot (" + std::to_string( shots ) + " shots)" ).c_str(), "naive s",
               "fast s", "speedup" );
  std::printf( "%-34s %11.4f %11.4f %8.1fx\n", "statevector sample_counts", sv_naive_s,
               sv_fast_s, sv_naive_s / sv_fast_s );
  std::printf( "%-34s %11.4f %11.4f %8.1fx\n", "stabilizer hidden-shift", st_naive_s,
               st_fast_s, st_naive_s / st_fast_s );
  std::printf( "%-34s %11.4f %11.4f %8.1fx\n", "stabilizer random-measure", cr_naive_s,
               cr_fast_s, cr_naive_s / cr_fast_s );

  /* ---- BENCH_sim.json ---- */
  std::FILE* json = std::fopen( "BENCH_sim.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_sim.json for writing\n" );
    return 1;
  }
  /* every section records the thread count and ISA it actually ran
   * with (they can differ per invocation via QDA_SIM_THREADS and
   * QDA_SIM_ISA, and the dispatched ISA depends on the host CPU) */
  const std::string section_meta = "\"threads\": " + std::to_string( sim::num_threads() ) +
                                   ", \"isa\": \"" +
                                   sim::isa_name( sim::active_isa() ) + "\"";
  std::fprintf( json, "{\n  \"experiment\": \"simulation_engine\",\n" );
  std::fprintf( json, "  %s,\n", telemetry::bench_metadata_json().c_str() );
  std::fprintf( json, "  %s,\n", section_meta.c_str() );
  std::fprintf( json, "  \"end_to_end\": { %s, \"results\": [\n", section_meta.c_str() );
  const auto print_end_to_end = [&]( const char* name, const end_to_end_result& r, bool last ) {
    std::fprintf( json,
                  "    { \"name\": \"%s\", \"qubits\": %u, \"gates\": %llu, "
                  "\"naive_gates_per_s\": %.1f, \"fused_gates_per_s\": %.1f, "
                  "\"speedup\": %.2f }%s\n",
                  name, r.num_qubits, static_cast<unsigned long long>( r.gates ),
                  r.naive_gates_per_s(), r.fused_gates_per_s(), r.speedup(), last ? "" : "," );
  };
  for ( size_t i = 0u; i < layered.size(); ++i )
  {
    const std::string name = "layered-" + std::to_string( layered[i].num_qubits ) + "q";
    print_end_to_end( name.c_str(), layered[i], false );
  }
  const std::string brickwork_name = "brickwork-" + std::to_string( big_qubits ) + "q";
  print_end_to_end( brickwork_name.c_str(), brickwork, true );
  std::fprintf( json, "  ] },\n  \"kernels\": { %s, \"results\": [\n", section_meta.c_str() );
  for ( size_t i = 0u; i < kernels.size(); ++i )
  {
    std::fprintf( json,
                  "    { \"name\": \"%s\", \"naive_ns_per_amp\": %.4f, "
                  "\"fast_ns_per_amp\": %.4f, \"speedup\": %.2f }%s\n", kernels[i].name.c_str(),
                  kernels[i].naive_ns_per_amp, kernels[i].fast_ns_per_amp,
                  kernels[i].naive_ns_per_amp / kernels[i].fast_ns_per_amp,
                  i + 1u < kernels.size() ? "," : "" );
  }
  std::fprintf( json, "  ] },\n  \"sampling\": { %s, \"results\": [\n", section_meta.c_str() );
  const auto sampling_name = [&]( const std::string& base, uint32_t qubits ) {
    return base + "-" + std::to_string( qubits ) + "q-" + std::to_string( shots ) + "shots";
  };
  std::fprintf( json,
                "    { \"name\": \"%s\", \"naive_s\": %.5f, "
                "\"fast_s\": %.5f, \"speedup\": %.2f },\n",
                sampling_name( "statevector", big_qubits ).c_str(), sv_naive_s, sv_fast_s,
                sv_naive_s / sv_fast_s );
  std::fprintf( json,
                "    { \"name\": \"%s\", \"naive_s\": %.5f, "
                "\"fast_s\": %.5f, \"speedup\": %.2f },\n",
                sampling_name( "stabilizer-hidden-shift", 2u * half ).c_str(), st_naive_s,
                st_fast_s, st_naive_s / st_fast_s );
  std::fprintf( json,
                "    { \"name\": \"%s\", "
                "\"naive_s\": %.5f, \"fast_s\": %.5f, \"speedup\": %.2f }\n",
                sampling_name( "stabilizer-random-measure", smoke ? 24u : 48u ).c_str(),
                cr_naive_s, cr_fast_s, cr_naive_s / cr_fast_s );
  std::fprintf( json, "  ] }\n}\n" );
  std::fclose( json );
  std::printf( "\nwrote BENCH_sim.json\n" );

  /* ---- acceptance floors (full runs only) ---- */
  bool ok = true;
  if ( smoke )
  {
    return 0;
  }
  const double layered_20q_speedup = layered.back().speedup();
  if ( layered_20q_speedup < 5.0 )
  {
    std::printf( "E9: FAIL 20-qubit layered speedup %.1fx < 5x\n", layered_20q_speedup );
    ok = false;
  }
  /* 2x the pre-SIMD committed number (624.8 fused gates/s): the
   * brickwork workload defeats cross-layer fusion, so this floor tracks
   * the raw fused_kq block throughput rather than fusion quality */
  if ( brickwork.fused_gates_per_s() < 1249.6 )
  {
    std::printf( "E9: FAIL brickwork-20q fused throughput %.1f gates/s < 1249.6\n",
                 brickwork.fused_gates_per_s() );
    ok = false;
  }
  const double h_kernel_speedup = kernels.front().naive_ns_per_amp / kernels.front().fast_ns_per_amp;
  if ( h_kernel_speedup < 1.5 )
  {
    std::printf( "E9: FAIL generic 2x2 kernel speedup %.1fx < 1.5x\n", h_kernel_speedup );
    ok = false;
  }
  if ( st_naive_s / st_fast_s < 10.0 )
  {
    std::printf( "E9: FAIL stabilizer hidden-shift speedup %.1fx < 10x\n",
                 st_naive_s / st_fast_s );
    ok = false;
  }
  return ok ? 0 : 1;
}
