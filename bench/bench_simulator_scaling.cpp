/*! \file bench_simulator_scaling.cpp
 *  \brief Experiment E9: state-vector simulator throughput.
 *
 *  Context for the paper's Sec. I discussion of classical simulability
 *  (45 qubits needed 0.5 PB on a supercomputer): we measure gate
 *  throughput of the full state-vector simulator as qubit count grows,
 *  using google-benchmark for the timing loop.  Memory doubles per
 *  qubit; time per gate grows as O(2^n).
 */
#include "quantum/qcircuit.hpp"
#include "simulator/statevector.hpp"

#include <benchmark/benchmark.h>

#include <random>

namespace
{

using namespace qda;

qcircuit random_layered_circuit( uint32_t num_qubits, uint32_t num_layers, uint64_t seed )
{
  std::mt19937_64 rng( seed );
  qcircuit circuit( num_qubits );
  for ( uint32_t layer = 0u; layer < num_layers; ++layer )
  {
    for ( uint32_t q = 0u; q < num_qubits; ++q )
    {
      switch ( rng() % 3u )
      {
      case 0u: circuit.h( q ); break;
      case 1u: circuit.t( q ); break;
      default: circuit.rz( q, 0.3 ); break;
      }
    }
    for ( uint32_t q = 0u; q + 1u < num_qubits; q += 2u )
    {
      if ( layer & 1u )
      {
        circuit.cx( q + 1u, q );
      }
      else
      {
        circuit.cx( q, q + 1u );
      }
    }
  }
  return circuit;
}

void simulate_random_circuit( benchmark::State& state )
{
  const uint32_t num_qubits = static_cast<uint32_t>( state.range( 0 ) );
  const auto circuit = random_layered_circuit( num_qubits, 4u, 42u );
  for ( auto _ : state )
  {
    statevector_simulator simulator( num_qubits );
    simulator.run( circuit );
    benchmark::DoNotOptimize( simulator.state().data() );
  }
  state.counters["gates_per_s"] = benchmark::Counter(
      static_cast<double>( circuit.num_gates() * state.iterations() ),
      benchmark::Counter::kIsRate );
  state.counters["amplitudes"] = static_cast<double>( uint64_t{ 1 } << num_qubits );
}

} // namespace

BENCHMARK( simulate_random_circuit )->DenseRange( 8, 20, 2 )->Unit( benchmark::kMillisecond );

BENCHMARK_MAIN();
