/*! \file bench_fig6_ibm_histogram.cpp
 *  \brief Experiment E3: the paper's Fig. 6 IBM QE histogram.
 *
 *  The paper executed the compiled Fig. 4 circuit on the IBM Quantum
 *  Experience chip, three runs of 1024 shots each, and observed the
 *  correct shift s = 1 with average probability ~0.63.  We reproduce
 *  the experiment on the modeled QX4 device: the logical circuit is
 *  routed onto the directed coupling map and executed under the
 *  calibrated depolarizing + readout noise model.  The table prints
 *  mean and standard deviation per outcome over the three runs --
 *  the same data Fig. 6 plots.
 */
#include "core/hidden_shift.hpp"
#include "core/ibm_backend.hpp"
#include "simulator/statevector.hpp"

#include <cmath>
#include <cstdio>

int main()
{
  using namespace qda;

  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto logical = hidden_shift_circuit( { f, 1u } );
  const auto device = coupling_map::ibm_qx4();
  const auto model = noise_model::ibm_qx4_early2018();

  constexpr uint32_t num_runs = 3u;
  constexpr uint64_t shots = 1024u;

  double probability[3][16] = {};
  uint64_t added_swaps = 0u;
  uint64_t direction_fixes = 0u;
  for ( uint32_t run = 0u; run < num_runs; ++run )
  {
    const auto execution = run_on_ibm_model( logical, device, model, shots, 2018u + run );
    added_swaps = execution.added_swaps;
    direction_fixes = execution.added_direction_fixes;
    for ( const auto& [outcome, count] : execution.counts )
    {
      probability[run][outcome & 15u] = static_cast<double>( count ) / shots;
    }
  }

  std::printf( "E3: Fig. 6 -- 3 runs x 1024 shots on the modeled IBM QX4 chip\n" );
  std::printf( "routing: %llu swaps, %llu direction fixes\n\n",
               static_cast<unsigned long long>( added_swaps ),
               static_cast<unsigned long long>( direction_fixes ) );
  std::printf( "%-8s %-8s %-8s\n", "outcome", "mean", "stddev" );

  double success_mean = 0.0;
  for ( uint32_t outcome = 0u; outcome < 16u; ++outcome )
  {
    double mean = 0.0;
    for ( uint32_t run = 0u; run < num_runs; ++run )
    {
      mean += probability[run][outcome];
    }
    mean /= num_runs;
    double variance = 0.0;
    for ( uint32_t run = 0u; run < num_runs; ++run )
    {
      variance += ( probability[run][outcome] - mean ) * ( probability[run][outcome] - mean );
    }
    const double stddev = std::sqrt( variance / num_runs );
    std::printf( "%-8s %-8.4f %-8.4f\n", format_outcome( outcome, 4u ).c_str(), mean, stddev );
    if ( outcome == 1u )
    {
      success_mean = mean;
    }
  }

  std::printf( "\ncorrect shift 0001 found with average probability p = %.2f"
               " (paper: p ~ 0.63)\n",
               success_mean );
  /* the shape requirement: the correct shift must dominate every other
   * outcome by a wide margin, and noise must populate the rest */
  bool dominant = true;
  for ( uint32_t outcome = 0u; outcome < 16u; ++outcome )
  {
    double mean = 0.0;
    for ( uint32_t run = 0u; run < num_runs; ++run )
    {
      mean += probability[run][outcome] / num_runs;
    }
    if ( outcome != 1u && mean > success_mean / 2.0 )
    {
      dominant = false;
    }
  }
  std::printf( "shape check: correct outcome dominates = %s\n", dominant ? "yes" : "NO" );
  return dominant && success_mean > 0.4 && success_mean < 0.9 ? 0 : 1;
}
