/*! \file bench_fig5_inner_product.cpp
 *  \brief Experiment E2: the Fig. 4/Fig. 5 inner-product instance.
 *
 *  f(x) = x1 x2 xor x3 x4, g(x) = f(x + 1), s = 1.  Reproduces the
 *  generated quantum circuit of Fig. 5 (gate counts per algorithm step
 *  of Fig. 3), the simulator output "Shift is 1", and sweeps all 16
 *  shifts to confirm deterministic recovery.
 */
#include "core/engine.hpp"
#include "core/hidden_shift.hpp"
#include "core/oracles.hpp"
#include "kernel/expression.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto predicate = boolean_expression::parse( "(a and b) ^ (c and d)" );
  const auto f = predicate.to_truth_table();

  std::printf( "E2: hidden shift instance of paper Fig. 4/5\n" );
  std::printf( "f(x) = (a and b) xor (c and d), s = 1\n\n" );

  /* per-step gate counts, mirroring the indices 1..6 of Fig. 3 */
  main_engine eng( 4u );
  const std::vector<uint32_t> qubits{ 0u, 1u, 2u, 3u };
  {
    auto computed = eng.compute();
    eng.all_h();
    eng.x( 0u );
  }
  const size_t after_compute = eng.circuit().num_gates();
  phase_oracle( eng, f, qubits );
  const size_t after_ug = eng.circuit().num_gates();
  eng.uncompute();
  const size_t after_uncompute = eng.circuit().num_gates();
  phase_oracle( eng, f, qubits );
  const size_t after_dual = eng.circuit().num_gates();
  eng.all_h();
  eng.measure_all();

  std::printf( "step 1+2a (H, shift X):      %zu gates\n", after_compute );
  std::printf( "step 2b   (U_f phase):       %zu gates\n", after_ug - after_compute );
  std::printf( "step 3    (uncompute):       %zu gates\n", after_uncompute - after_ug );
  std::printf( "step 4    (U_f~ phase):      %zu gates\n", after_dual - after_uncompute );
  std::printf( "steps 5,6 (H, measure):      %zu gates\n",
               eng.circuit().num_gates() - after_dual );
  std::printf( "total: %s\n\n", format_statistics( compute_statistics( eng.circuit() ) ).c_str() );

  const uint64_t shift = eng.run();
  std::printf( "Shift is %llu\n", static_cast<unsigned long long>( shift ) );

  uint32_t exact = 0u;
  for ( uint64_t s = 0u; s < 16u; ++s )
  {
    if ( solve_hidden_shift( hidden_shift_circuit( { f, s } ) ) == s )
    {
      ++exact;
    }
  }
  std::printf( "shift sweep: %u/16 recovered deterministically (paper: exact answer)\n", exact );
  return shift == 1u && exact == 16u ? 0 : 1;
}
