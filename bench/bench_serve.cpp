/*! \file bench_serve.cpp
 *  \brief Experiment E11: compile-server throughput on a zipf workload.
 *
 *  The paper frames design automation for quantum programs as a
 *  service: many clients push Eq. (5)-style specs at a compiler and
 *  expect circuits back.  This bench measures what the serving layer
 *  (src/server/) buys over the pre-server status quo of compiling every
 *  request from scratch on one thread:
 *
 *    - serial_baseline: 1 worker, result cache, prefix reuse and
 *      coalescing all off -- each request is an independent cold
 *      compile (what a CLI loop over specs does);
 *    - amortized_{1,8,32}w: the full server (sharded structural-hash
 *      result cache, cross-job prefix reuse, coalescing) at different
 *      worker-pool sizes;
 *    - exact_text_8w: ablation keying the cache on the raw spec string
 *      instead of the canonical structural hash.
 *
 *  The workload is zipf-distributed over ~30 unique pipelines (hwb
 *  3..5 with assorted optimization tails), and every request's raw text
 *  is drawn from one of three equivalent spellings (whitespace, empty
 *  segments), as produced by scripted clients.  The headline metric --
 *  compiles/sec at 8 workers vs the serial baseline -- is dominated by
 *  cross-request amortization (dedup, coalescing, prefix reuse), which
 *  is the design point of the subsystem; the pure same-config thread
 *  scaling ratio is also emitted and is hardware-dependent (this gate
 *  keeps compiling on 1-core CI runners, where thread scaling is ~1x).
 *
 *  Emits BENCH_serve.json and (outside QDA_BENCH_SMOKE) enforces the
 *  acceptance floors: >= 4x amortized speedup at 8 workers and a
 *  strictly higher hit rate for structural keying than for exact-text
 *  keying.
 */
#include "pipeline/pass_manager.hpp"
#include "server/compile_server.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metadata.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace
{

using clock_type = qda::telemetry::steady_clock;
using qda::telemetry::elapsed_ms_since;
using namespace qda::server;

/*! One of three equivalent spellings of `spec`, as distinct clients
 *  would type it. */
std::string respell( const std::string& spec, size_t variant )
{
  switch ( variant % 3u )
  {
  case 1u:
  {
    auto noisy = "  " + spec + " ;";
    for ( size_t pos = 0u; ( pos = noisy.find( "; ", pos ) ) != std::string::npos; )
    {
      noisy.replace( pos, 2u, " ;  ; " );
      pos += 6u;
    }
    return noisy;
  }
  case 2u:
  {
    auto noisy = spec;
    for ( size_t pos = 0u; ( pos = noisy.find( "; ", pos ) ) != std::string::npos; )
    {
      noisy.replace( pos, 2u, ";" );
    }
    return noisy + " ;";
  }
  default:
    return spec;
  }
}

std::vector<std::string> make_unique_pipelines( bool smoke )
{
  const std::vector<std::string> tails = {
    "tbs",
    "tbs --bidirectional",
    "tbs; revsimp",
    "tbs; rptm",
    "tbs; revsimp; rptm",
    "tbs; revsimp; rptm; tpar",
    "tbs; revsimp; rptm; tpar; ps",
    "tbs; revsimp; rptm; peephole",
    "dbs",
    "dbs; revsimp",
  };
  std::vector<std::string> unique;
  const uint32_t max_n = smoke ? 4u : 5u;
  for ( uint32_t n = 3u; n <= max_n; ++n )
  {
    for ( const auto& tail : tails )
    {
      unique.push_back( "revgen --hwb " + std::to_string( n ) + "; " + tail );
    }
  }
  return unique;
}

/*! Zipf-distributed request stream: (pipeline index, spelling variant)
 *  pairs, identical for every measured configuration. */
std::vector<std::pair<size_t, size_t>> make_requests( size_t count, size_t num_unique )
{
  std::vector<double> weights;
  weights.reserve( num_unique );
  for ( size_t rank = 0u; rank < num_unique; ++rank )
  {
    weights.push_back( 1.0 / std::pow( static_cast<double>( rank + 1u ), 1.1 ) );
  }
  std::mt19937_64 rng( 0x5e7fe5u );
  std::discrete_distribution<size_t> pick( weights.begin(), weights.end() );
  std::vector<std::pair<size_t, size_t>> requests;
  requests.reserve( count );
  for ( size_t i = 0u; i < count; ++i )
  {
    requests.emplace_back( pick( rng ), rng() % 3u );
  }
  return requests;
}

struct config_result
{
  std::string name;
  uint32_t workers = 0u;
  bool amortized = false;
  std::string keying;
  double wall_ms = 0.0;
  double throughput = 0.0; /*!< served requests per second */
  server_statistics stats;
};

/*! Runs the whole request stream through one server configuration with
 *  four client threads, wall-clocked end to end.  When \p per_job is
 *  set, every request is submitted with those job options (the
 *  fault-tolerant submit path); the workload itself stays healthy. */
config_result run_config( const std::string& name, server_options options,
                          const std::vector<std::string>& unique,
                          const std::vector<std::pair<size_t, size_t>>& requests,
                          const job_options* per_job = nullptr )
{
  config_result row;
  row.name = name;
  row.workers = options.num_workers;
  row.amortized = options.enable_result_cache;
  row.keying = options.keying == key_mode::structural ? "structural" : "exact_text";

  compile_server server( options );
  constexpr size_t num_clients = 4u;
  const auto start = clock_type::now();
  std::vector<std::thread> clients;
  clients.reserve( num_clients );
  for ( size_t c = 0u; c < num_clients; ++c )
  {
    clients.emplace_back( [&, c] {
      /* each client waits its chunk so futures don't pile up unbounded */
      const size_t begin = c * requests.size() / num_clients;
      const size_t end = ( c + 1u ) * requests.size() / num_clients;
      std::vector<std::future<compile_response>> futures;
      futures.reserve( end - begin );
      for ( size_t i = begin; i < end; ++i )
      {
        const auto& [pick, variant] = requests[i];
        const auto spelled = respell( unique[pick], variant );
        if ( per_job != nullptr )
        {
          auto handle = server.submit( spelled, *per_job );
          futures.push_back( std::move( handle.future() ) );
        }
        else
        {
          futures.push_back( server.submit( spelled ) );
        }
      }
      for ( auto& future : futures )
      {
        future.get();
      }
    } );
  }
  for ( auto& client : clients )
  {
    client.join();
  }
  row.wall_ms = elapsed_ms_since( start );
  row.throughput =
      row.wall_ms > 0.0 ? 1000.0 * static_cast<double>( requests.size() ) / row.wall_ms
                        : 0.0;
  row.stats = server.statistics();
  return row;
}

server_options amortized_options( uint32_t workers )
{
  server_options options;
  options.num_workers = workers;
  return options;
}

} // namespace

int main()
{
  using namespace qda;

  const char* smoke_env = std::getenv( "QDA_BENCH_SMOKE" );
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';

  const auto unique = make_unique_pipelines( smoke );
  const size_t num_requests = smoke ? 60u : 1200u;
  const auto requests = make_requests( num_requests, unique.size() );

  std::printf( "E11: compile server on a zipf workload (%zu requests over %zu pipelines%s)\n",
               requests.size(), unique.size(), smoke ? ", smoke" : "" );

  /* ---- correctness spot check: served results == cold compiles ---- */

  {
    compile_server server( amortized_options( 8u ) );
    pass_manager reference( /*enable_cache=*/false );
    for ( size_t i = 0u; i < unique.size(); i += 5u )
    {
      const auto served = server.submit( respell( unique[i], i % 3u ) ).get();
      const auto expected = reference.run( unique[i] );
      const auto gates = []( const staged_ir& ir ) {
        return ir.current == stage::reversible ? ir.require_reversible().num_gates()
                                               : ir.require_quantum().circuit.num_gates();
      };
      if ( gates( served.result->ir ) != gates( expected.ir ) )
      {
        std::printf( "E11: VERIFY-FAIL served '%s' differs from a cold compile\n",
                     unique[i].c_str() );
        return 1;
      }
    }
    std::printf( "verification: served results match cold compiles\n" );
  }

  /* ---- measured configurations ---- */

  std::vector<config_result> rows;

  {
    server_options serial;
    serial.num_workers = 1u;
    serial.enable_result_cache = false;
    serial.enable_prefix_reuse = false;
    serial.coalesce_identical = false;
    rows.push_back( run_config( "serial_baseline", serial, unique, requests ) );
  }
  rows.push_back( run_config( "amortized_1w", amortized_options( 1u ), unique, requests ) );
  rows.push_back( run_config( "amortized_8w", amortized_options( 8u ), unique, requests ) );
  rows.push_back( run_config( "amortized_32w", amortized_options( 32u ), unique, requests ) );
  {
    auto exact = amortized_options( 8u );
    exact.keying = key_mode::exact_text;
    exact.enable_prefix_reuse = false; /* text keys have no pass structure */
    rows.push_back( run_config( "exact_text_8w", exact, unique, requests ) );
  }
  {
    /* healthy workload through the fault-tolerant submit path: degrade
     * policy armed but never triggered -- measures the overhead of the
     * cancellation/rollback plumbing itself */
    server::job_options degrade;
    degrade.policy = failure_policy::degrade;
    rows.push_back(
        run_config( "degrade_8w", amortized_options( 8u ), unique, requests, &degrade ) );
  }

  std::printf( "\n%-16s %-8s %-10s %-11s %-10s %-9s %-9s %-9s %-8s\n", "config", "workers",
               "wall-ms", "compiles/s", "hit-rate", "compiled", "hits", "coalesced",
               "prefix" );
  for ( const auto& row : rows )
  {
    std::printf( "%-16s %-8u %-10.1f %-11.1f %-10.3f %-9llu %-9llu %-9llu %-8llu\n",
                 row.name.c_str(), row.workers, row.wall_ms, row.throughput,
                 row.stats.hit_rate(),
                 static_cast<unsigned long long>( row.stats.compiled ),
                 static_cast<unsigned long long>( row.stats.cache_hits ),
                 static_cast<unsigned long long>( row.stats.coalesced ),
                 static_cast<unsigned long long>( row.stats.prefix_passes_skipped ) );
  }

  const auto find_row = [&]( const char* name ) -> const config_result& {
    for ( const auto& row : rows )
    {
      if ( row.name == name )
      {
        return row;
      }
    }
    std::abort();
  };
  const auto& serial = find_row( "serial_baseline" );
  const auto& amortized_1 = find_row( "amortized_1w" );
  const auto& amortized_8 = find_row( "amortized_8w" );
  const auto& exact_text = find_row( "exact_text_8w" );
  const auto& degrade_8 = find_row( "degrade_8w" );

  const double speedup =
      serial.throughput > 0.0 ? amortized_8.throughput / serial.throughput : 0.0;
  const double thread_scaling =
      amortized_1.throughput > 0.0 ? amortized_8.throughput / amortized_1.throughput : 0.0;
  const double structural_hit_rate = amortized_8.stats.hit_rate();
  const double exact_hit_rate = exact_text.stats.hit_rate();
  const double degrade_healthy_ratio =
      amortized_8.throughput > 0.0 ? degrade_8.throughput / amortized_8.throughput : 0.0;

  std::printf( "\nsummary:\n" );
  std::printf( "  8-worker amortized vs serial baseline: %.1fx\n", speedup );
  std::printf( "  8-worker vs 1-worker (same config, hardware-dependent): %.2fx\n",
               thread_scaling );
  std::printf( "  hit rate: structural %.3f vs exact-text %.3f\n", structural_hit_rate,
               exact_hit_rate );
  std::printf( "  prefix reuse at 8 workers: %llu passes skipped, %.1f ms saved\n",
               static_cast<unsigned long long>( amortized_8.stats.prefix_passes_skipped ),
               amortized_8.stats.prefix_saved_ms );
  std::printf( "  fault-path overhead on a healthy workload: %.1f%% "
               "(degrade policy at %.1f req/s vs strict at %.1f)\n",
               100.0 * ( 1.0 - degrade_healthy_ratio ), degrade_8.throughput,
               amortized_8.throughput );
  std::printf( "\n%s", format_server_report( amortized_8.stats ).c_str() );

  /* ---- machine-readable record for cross-PR tracking ---- */

  std::FILE* json = std::fopen( "BENCH_serve.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_serve.json for writing\n" );
    return 1;
  }
  std::fprintf( json, "{\n  \"experiment\": \"compile_serve\",\n  %s,\n",
                telemetry::bench_metadata_json().c_str() );
  std::fprintf( json,
                "  \"smoke\": %s,\n  \"workload\": { \"requests\": %zu, "
                "\"unique_pipelines\": %zu, \"spelling_variants\": 3, "
                "\"zipf_exponent\": 1.1, \"client_threads\": 4 },\n",
                smoke ? "true" : "false", requests.size(), unique.size() );
  std::fprintf( json, "  \"configs\": [\n" );
  for ( size_t i = 0u; i < rows.size(); ++i )
  {
    const auto& row = rows[i];
    std::fprintf(
        json,
        "    { \"name\": \"%s\", \"workers\": %u, \"amortized\": %s, \"keying\": \"%s\", "
        "\"wall_ms\": %.1f, \"throughput_per_sec\": %.1f, \"hit_rate\": %.4f, "
        "\"compiled\": %llu, \"cache_hits\": %llu, \"coalesced\": %llu, "
        "\"prefix_hits\": %llu, \"prefix_passes_skipped\": %llu, "
        "\"prefix_saved_ms\": %.1f, \"peak_queue_depth\": %llu, "
        "\"failed\": %llu, \"cancelled\": %llu, \"deadline_exceeded\": %llu, "
        "\"degraded\": %llu, \"retried\": %llu }%s\n",
        row.name.c_str(), row.workers, row.amortized ? "true" : "false",
        row.keying.c_str(), row.wall_ms, row.throughput, row.stats.hit_rate(),
        static_cast<unsigned long long>( row.stats.compiled ),
        static_cast<unsigned long long>( row.stats.cache_hits ),
        static_cast<unsigned long long>( row.stats.coalesced ),
        static_cast<unsigned long long>( row.stats.prefix_hits ),
        static_cast<unsigned long long>( row.stats.prefix_passes_skipped ),
        row.stats.prefix_saved_ms,
        static_cast<unsigned long long>( row.stats.peak_queue_depth ),
        static_cast<unsigned long long>( row.stats.failed ),
        static_cast<unsigned long long>( row.stats.cancelled ),
        static_cast<unsigned long long>( row.stats.deadline_exceeded ),
        static_cast<unsigned long long>( row.stats.degraded ),
        static_cast<unsigned long long>( row.stats.retried ),
        i + 1u < rows.size() ? "," : "" );
  }
  std::fprintf( json, "  ],\n" );
  std::fprintf( json,
                "  \"summary\": { \"speedup_8_workers_vs_serial_baseline\": %.2f, "
                "\"thread_scaling_8v1\": %.2f, \"structural_hit_rate\": %.4f, "
                "\"exact_text_hit_rate\": %.4f, \"hit_rate_gain\": %.4f, "
                "\"degrade_healthy_ratio\": %.4f }\n}\n",
                speedup, thread_scaling, structural_hit_rate, exact_hit_rate,
                structural_hit_rate - exact_hit_rate, degrade_healthy_ratio );
  std::fclose( json );
  std::printf( "wrote BENCH_serve.json\n" );

  /* ---- acceptance floors (full runs only) ---- */

  if ( !smoke )
  {
    bool failed = false;
    if ( speedup < 4.0 )
    {
      std::printf( "E11: FAIL amortized 8-worker speedup %.1fx < 4x\n", speedup );
      failed = true;
    }
    if ( structural_hit_rate <= exact_hit_rate )
    {
      std::printf( "E11: FAIL structural hit rate %.3f not above exact-text %.3f\n",
                   structural_hit_rate, exact_hit_rate );
      failed = true;
    }
    /* the fault plumbing should be invisible on a healthy workload; the
     * floor is generous because both sides are wall-clock measurements
     * on shared CI hardware (the tracked ratio is gated more tightly by
     * check_bench_regression.py against the committed baseline) */
    if ( degrade_healthy_ratio < 0.80 )
    {
      std::printf( "E11: FAIL degrade-policy healthy throughput %.2fx of strict (< 0.80x)\n",
                   degrade_healthy_ratio );
      failed = true;
    }
    if ( degrade_8.stats.degraded != 0u || degrade_8.stats.failed != 0u )
    {
      std::printf( "E11: FAIL healthy degrade run reported %llu degraded, %llu failed jobs\n",
                   static_cast<unsigned long long>( degrade_8.stats.degraded ),
                   static_cast<unsigned long long>( degrade_8.stats.failed ) );
      failed = true;
    }
    if ( failed )
    {
      return 1;
    }
    std::printf( "floors: amortized speedup >= 4x, structural > exact-text hit rate, "
                 "healthy degrade-path >= 0.80x strict throughput\n" );
  }
  return 0;
}
