/*! \file bench_arithmetic_components.cpp
 *  \brief Experiment E12 (extension): manual components vs automatic flow.
 *
 *  Paper Sec. IV: "the current quantum programming flow depends on
 *  predefined library components for which manually derived quantum
 *  circuits exist.  Such a manual flow is time-consuming, not flexible,
 *  and not scalable."  This ablation quantifies the gap on +c mod 2^n:
 *  the hand-crafted CDKM constant adder against the automatic flows
 *  (TBS, DBS on the same permutation; LUT-based hierarchical synthesis
 *  of the output functions), comparing lines, MCT gates and T-count.
 */
#include "mapping/clifford_t.hpp"
#include "optimization/revsimp.hpp"
#include "synthesis/arithmetic.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/lut_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <cstdio>

namespace
{

using namespace qda;

void report( const char* method, uint32_t n, const rev_circuit& circuit )
{
  const auto mapped = map_to_clifford_t( circuit );
  const auto stats = compute_statistics( mapped.circuit );
  std::printf( "%-4u %-12s %-7u %-8zu %-9llu %-8llu\n", n, method, circuit.num_lines(),
               circuit.num_gates(), static_cast<unsigned long long>( stats.t_count ),
               static_cast<unsigned long long>( stats.cnot_count ) );
}

} // namespace

int main()
{
  std::printf( "E12: +c mod 2^n -- manual CDKM component vs automatic synthesis\n" );
  std::printf( "%-4s %-12s %-7s %-8s %-9s %-8s\n", "n", "method", "lines", "MCT", "T-count",
               "CNOT" );

  for ( const uint32_t n : { 4u, 5u, 6u } )
  {
    const uint64_t constant = ( uint64_t{ 1 } << ( n - 1u ) ) | 3u;
    const auto manual = constant_adder( n, constant );
    report( "cdkm", n, manual );

    const auto target = modular_adder_permutation( n, constant );
    report( "tbs", n, revsimp( transformation_based_synthesis( target ) ) );
    report( "tbs-bidi", n,
            revsimp( transformation_based_synthesis_bidirectional( target ) ) );
    report( "dbs", n, revsimp( decomposition_based_synthesis( target ) ) );
    std::printf( "\n" );
  }

  std::printf( "reading: the manual component uses helper lines but linear gate count;\n"
               "ancilla-free automatic synthesis pays exponentially growing MCT cascades\n"
               "-- the scalability tension of paper Sec. IV/V.\n" );
  return 0;
}
