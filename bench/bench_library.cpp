/*! \file bench_library.cpp
 *  \brief Experiment E11: the trace-driven subcircuit library
 *         (BENCH_library.json).
 *
 *  Measures what the cross-compilation library buys on the paper's
 *  Eq. (5) pipeline for hwb-8, isolated to the rptm+tpar segment (the
 *  only passes that splice).  Four segments:
 *
 *   - baseline        : library disabled (`use_library = false`)
 *   - first sighting  : a fresh library; every shape misses, is
 *                       synthesized, fingerprinted and admitted
 *   - second sighting : the same library; the whole rptm and tpar
 *                       inputs hit and splice, skipping synthesis
 *   - warm restart    : a new library instance over the same on-disk
 *                       store (a simulated process restart); the
 *                       entries reload and the first run already hits
 *
 *  The compilation result cache is disabled throughout -- it would
 *  otherwise answer the repeats itself and the passes would never run.
 *  Every library run is checked against the baseline circuit: splices
 *  must reproduce the synthesized form exactly, so a statistics
 *  mismatch fails the bench.
 *
 *  Enforced floors (scripts/check_bench_regression.py): the second
 *  sighting must be >= 1.5x faster than the first on the rptm+tpar
 *  segment, and the warm restart must win >= 1.1x.  `QDA_BENCH_SMOKE`
 *  shrinks the instance and skips the floors.
 */
#include "library/subcircuit_library.hpp"
#include "pipeline/pass_manager.hpp"
#include "telemetry/metadata.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace
{

/*! Wall-clock of the splicing passes, from the pass reports. */
double segment_ms( const qda::compilation_result& result )
{
  double total = 0.0;
  for ( const auto& report : result.reports )
  {
    if ( report.name == "rptm" || report.name == "tpar" )
    {
      total += report.elapsed_ms;
    }
  }
  return total;
}

qda::compilation_result run_pipeline( qda::pass_manager& manager,
                                      const qda::pipeline_spec& spec,
                                      qda::library::subcircuit_library* library )
{
  qda::run_plan plan;
  plan.use_library = library != nullptr;
  plan.library = library;
  return manager.run( spec, qda::staged_ir{}, plan );
}

bool same_final_circuit( const qda::compilation_result& a, const qda::compilation_result& b )
{
  if ( !a.ir.quantum.has_value() || !b.ir.quantum.has_value() )
  {
    return false;
  }
  return a.ir.quantum->circuit == b.ir.quantum->circuit &&
         a.ir.quantum->num_helper_qubits == b.ir.quantum->num_helper_qubits;
}

} // namespace

int main()
{
  using namespace qda;

  const char* smoke_env = std::getenv( "QDA_BENCH_SMOKE" );
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const uint32_t n = smoke ? 6u : 8u;
  const uint32_t reps = smoke ? 1u : 3u;
  const std::string instance = "hwb-" + std::to_string( n );
  const std::string store_path = "BENCH_library_store.bin";
  std::remove( store_path.c_str() );

  const auto spec = parse_pipeline( "revgen --hwb " + std::to_string( n ) +
                                    "; tbs; revsimp; rptm; tpar; ps" );
  pass_manager manager( /*enable_cache=*/false );

  std::printf( "E11: subcircuit library on %s (rptm+tpar segment%s)\n", instance.c_str(),
               smoke ? ", smoke" : "" );

  /* ---- baseline: no library at all ---- */

  auto baseline = run_pipeline( manager, spec, nullptr );
  double baseline_ms = segment_ms( baseline );
  for ( uint32_t rep = 1u; rep < reps; ++rep )
  {
    const auto repeat = run_pipeline( manager, spec, nullptr );
    baseline_ms = std::min( baseline_ms, segment_ms( repeat ) );
  }

  /* ---- first sighting: fresh library, everything misses ---- */

  library::library_options options;
  options.path = store_path;
  library::subcircuit_library lib{ options };

  const auto first = run_pipeline( manager, spec, &lib );
  const double first_ms = segment_ms( first );
  const auto after_first = lib.statistics();

  /* ---- second sighting: the same library, whole-pass inputs hit ---- */

  auto second = run_pipeline( manager, spec, &lib );
  double second_ms = segment_ms( second );
  for ( uint32_t rep = 1u; rep < reps; ++rep )
  {
    const auto repeat = run_pipeline( manager, spec, &lib );
    second_ms = std::min( second_ms, segment_ms( repeat ) );
  }
  const auto after_second = lib.statistics();

  /* ---- warm restart: a new library over the same store file ---- */

  library::subcircuit_library restarted{ options };
  const auto restarted_stats = restarted.statistics();
  const auto restart = run_pipeline( manager, spec, &restarted );
  const double restart_ms = segment_ms( restart );

  /* splices must be byte-exact reproductions of the synthesized form */
  if ( !same_final_circuit( baseline, first ) || !same_final_circuit( baseline, second ) ||
       !same_final_circuit( baseline, restart ) )
  {
    std::printf( "SPLICED CIRCUIT DIVERGED from the no-library baseline\n" );
    std::remove( store_path.c_str() );
    return 1;
  }

  const double second_speedup = second_ms > 0.0 ? first_ms / second_ms : 0.0;
  const double restart_speedup = restart_ms > 0.0 ? first_ms / restart_ms : 0.0;

  std::printf( "%-18s %-12s %-10s\n", "segment", "rptm+tpar", "speedup" );
  std::printf( "%-18s %-12.3f %-10s\n", "baseline", baseline_ms, "-" );
  std::printf( "%-18s %-12.3f %-10s\n", "first sighting", first_ms, "-" );
  std::printf( "%-18s %-12.3f %8.1fx\n", "second sighting", second_ms, second_speedup );
  std::printf( "%-18s %-12.3f %8.1fx\n", "warm restart", restart_ms, restart_speedup );
  std::printf( "  library: %s\n", format_library_report( after_second ).c_str() );
  std::printf( "  restart loaded %llu entries from %s\n",
               static_cast<unsigned long long>( restarted_stats.loaded_entries ),
               store_path.c_str() );
  /* timing floors are enforced by check_bench_regression.py on the
   * tracked JSON, not the exit code (loaded runners, sanitizer builds) */
  std::printf( "  requirement (second sighting >= 1.5x): %s\n",
               second_speedup >= 1.5 ? "PASS" : "WARN" );
  std::printf( "  requirement (warm restart   >= 1.1x): %s\n",
               restart_speedup >= 1.1 ? "PASS" : "WARN" );

  /* ---- machine-readable record for cross-PR tracking ---- */

  std::FILE* json = std::fopen( "BENCH_library.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_library.json for writing\n" );
    std::remove( store_path.c_str() );
    return 1;
  }
  std::fprintf( json,
                "{\n  \"experiment\": \"subcircuit_library\",\n  %s,\n"
                "  \"smoke\": %s,\n"
                "  \"workload\": { \"instance\": \"%s\", \"segment\": \"rptm+tpar\" },\n",
                telemetry::bench_metadata_json().c_str(), smoke ? "true" : "false",
                instance.c_str() );
  std::fprintf( json,
                "  \"summary\": {\n"
                "    \"baseline_segment_ms\": %.3f,\n"
                "    \"first_sighting_segment_ms\": %.3f,\n"
                "    \"second_sighting_segment_ms\": %.3f,\n"
                "    \"warm_restart_segment_ms\": %.3f,\n"
                "    \"second_sighting_speedup\": %.2f,\n"
                "    \"warm_restart_speedup\": %.2f,\n"
                "    \"admits\": %llu,\n"
                "    \"entries\": %llu,\n"
                "    \"hits\": %llu,\n"
                "    \"loaded_entries\": %llu\n"
                "  }\n}\n",
                baseline_ms, first_ms, second_ms, restart_ms, second_speedup,
                restart_speedup, static_cast<unsigned long long>( after_first.admits ),
                static_cast<unsigned long long>( after_second.entries ),
                static_cast<unsigned long long>( after_second.hits ),
                static_cast<unsigned long long>( restarted_stats.loaded_entries ) );
  std::fclose( json );
  std::printf( "\nwrote BENCH_library.json\n" );

  std::remove( store_path.c_str() );
  return 0;
}
