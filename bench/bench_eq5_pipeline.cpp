/*! \file bench_eq5_pipeline.cpp
 *  \brief Experiment E1: the paper's Eq. (5) RevKit pipeline.
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  Reproduces the command sequence for the paper's hwb-4 instance and
 *  sweeps the hidden-weighted-bit family to larger sizes.  The paper
 *  prints final circuit statistics (`ps -c`); we report the same
 *  numbers for every pipeline stage plus wall-clock compile time.
 *
 *  E1b/E1c additionally measure the pass-manager infrastructure: the
 *  overhead of running the same pipeline through the registry/spec
 *  machinery instead of the direct fluent flow, and the speedup of the
 *  compilation cache on repeated identical compilations.
 */
#include "core/flow.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/timing.hpp"

#include <cstdio>
#include <string>

namespace
{

using clock_type = qda::detail::steady_clock;
using qda::detail::elapsed_ms_since;

std::string eq5_spec( uint32_t n )
{
  return "revgen --hwb " + std::to_string( n ) + "; tbs; revsimp; rptm; tpar; ps";
}

} // namespace

int main()
{
  using namespace qda;

  std::printf( "E1: revgen --hwb N; tbs; revsimp; rptm; tpar; ps -c\n" );
  std::printf( "%-4s %-10s %-10s %-9s %-9s %-8s %-7s %-7s %-10s\n", "N", "tbs-gates",
               "simp-gates", "T-count", "T-depth", "CNOT", "H", "depth", "compile-ms" );

  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    const auto start = clock_type::now();
    flow pipeline;
    pipeline.revgen_hwb( n ).tbs();
    const auto tbs_gates = pipeline.reversible().num_gates();
    pipeline.revsimp();
    const auto simp_gates = pipeline.reversible().num_gates();
    pipeline.rptm().tpar();
    const auto stats = pipeline.ps();
    const double elapsed_ms = elapsed_ms_since( start );

    std::printf( "%-4u %-10zu %-10zu %-9llu %-9llu %-8llu %-7llu %-7llu %-10.2f\n", n,
                 tbs_gates, simp_gates,
                 static_cast<unsigned long long>( stats.t_count ),
                 static_cast<unsigned long long>( stats.t_depth ),
                 static_cast<unsigned long long>( stats.cnot_count ),
                 static_cast<unsigned long long>( stats.h_count ),
                 static_cast<unsigned long long>( stats.depth ), elapsed_ms );

    if ( n <= 6u && !pipeline.verify() )
    {
      std::printf( "VERIFICATION FAILED for n=%u\n", n );
      return 1;
    }
  }
  std::printf( "verification: hwb-4..6 quantum circuits equivalent to their permutations\n" );

  /* ---- E1b: pass-manager overhead vs the direct fluent flow ---- */

  std::printf( "\nE1b: pass-manager overhead vs direct fluent flow (uncached)\n" );
  std::printf( "%-4s %-6s %-12s %-12s %-10s\n", "N", "reps", "fluent-ms", "manager-ms",
               "overhead" );
  for ( uint32_t n = 4u; n <= 7u; ++n )
  {
    const uint32_t reps = n <= 6u ? 20u : 5u;

    const auto fluent_start = clock_type::now();
    for ( uint32_t r = 0u; r < reps; ++r )
    {
      flow pipeline;
      pipeline.revgen_hwb( n ).tbs().revsimp().rptm().tpar().ps();
    }
    const double fluent_ms = elapsed_ms_since( fluent_start ) / reps;

    pass_manager uncached( /*enable_cache=*/false );
    const auto spec = parse_pipeline( eq5_spec( n ) );
    const auto manager_start = clock_type::now();
    for ( uint32_t r = 0u; r < reps; ++r )
    {
      uncached.run( spec );
    }
    const double manager_ms = elapsed_ms_since( manager_start ) / reps;

    std::printf( "%-4u %-6u %-12.3f %-12.3f %+.1f%%\n", n, reps, fluent_ms, manager_ms,
                 fluent_ms > 0.0 ? 100.0 * ( manager_ms - fluent_ms ) / fluent_ms : 0.0 );
  }

  /* ---- E1c: compilation-cache hit/miss timings ---- */

  std::printf( "\nE1c: compilation cache (second identical run served from cache)\n" );
  std::printf( "%-4s %-12s %-12s %-9s\n", "N", "miss-ms", "hit-ms", "speedup" );
  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    pass_manager cached;
    const auto spec = parse_pipeline( eq5_spec( n ) );
    const auto miss = cached.run( spec );
    const auto hit = cached.run( spec );
    if ( miss.cache_hit || !hit.cache_hit )
    {
      std::printf( "CACHE MISBEHAVED for n=%u\n", n );
      return 1;
    }
    std::printf( "%-4u %-12.3f %-12.3f %8.0fx\n", n, miss.total_ms, hit.total_ms,
                 hit.total_ms > 0.0 ? miss.total_ms / hit.total_ms : 0.0 );
  }

  /* per-pass breakdown of the paper's hwb-4 instance */
  pass_manager manager;
  std::printf( "\nper-pass breakdown (hwb-4):\n%s",
               format_report( manager.run( eq5_spec( 4u ) ) ).c_str() );
  return 0;
}
