/*! \file bench_eq5_pipeline.cpp
 *  \brief Experiment E1: the paper's Eq. (5) RevKit pipeline.
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  Reproduces the command sequence for the paper's hwb-4 instance and
 *  sweeps the hidden-weighted-bit family to larger sizes.  The paper
 *  prints final circuit statistics (`ps -c`); we report the same
 *  numbers for every pipeline stage plus wall-clock compile time.
 *
 *  E1b/E1c additionally measure the pass-manager infrastructure: the
 *  overhead of running the same pipeline through the registry/spec
 *  machinery instead of the direct fluent flow, and the speedup of the
 *  compilation cache on repeated identical compilations.
 *
 *  E1d compares the pre-refactor copy-rebuild `revsimp` (vector erase +
 *  restart after every change) against the unified-IR rewriter version
 *  on an erase-heavy input.  All per-pass wall times and gate counts
 *  are additionally written to BENCH_eq5.json so the perf trajectory is
 *  tracked across PRs.
 */
#include "core/flow.hpp"
#include "kernel/bits.hpp"
#include "optimization/revsimp.hpp"
#include "optimization/revsimp_reference.hpp"
#include "pipeline/pass_manager.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metadata.hpp"

#include <cstdio>
#include <random>
#include <string>
#include <vector>

namespace
{

using clock_type = qda::telemetry::steady_clock;
using qda::telemetry::elapsed_ms_since;

std::string eq5_spec( uint32_t n )
{
  return "revgen --hwb " + std::to_string( n ) + "; tbs; revsimp; rptm; tpar; ps";
}

/*! Erase-heavy input: a random cascade followed by its own inverse, so
 *  nearly every gate eventually cancels.
 */
qda::rev_circuit make_erase_heavy_circuit( uint32_t num_lines, uint32_t half_gates,
                                           uint64_t seed )
{
  std::mt19937_64 rng( seed );
  const uint64_t line_mask = ( uint64_t{ 1 } << num_lines ) - 1u;
  qda::rev_circuit circuit( num_lines );
  std::vector<qda::rev_gate> first_half;
  first_half.reserve( half_gates );
  for ( uint32_t g = 0u; g < half_gates; ++g )
  {
    const uint32_t target = static_cast<uint32_t>( rng() % num_lines );
    const uint64_t controls = rng() & line_mask & ~( uint64_t{ 1 } << target );
    const qda::rev_gate gate( controls, rng() & line_mask, target );
    circuit.add_gate( gate );
    first_half.push_back( gate );
  }
  for ( auto it = first_half.rbegin(); it != first_half.rend(); ++it )
  {
    circuit.add_gate( *it ); /* MCT gates are involutions */
  }
  return circuit;
}

} // namespace

int main()
{
  using namespace qda;

  std::printf( "E1: revgen --hwb N; tbs; revsimp; rptm; tpar; ps -c\n" );
  std::printf( "%-4s %-10s %-10s %-9s %-9s %-8s %-7s %-7s %-10s\n", "N", "tbs-gates",
               "simp-gates", "T-count", "T-depth", "CNOT", "H", "depth", "compile-ms" );

  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    const auto start = clock_type::now();
    flow pipeline;
    pipeline.revgen_hwb( n ).tbs();
    const auto tbs_gates = pipeline.reversible().num_gates();
    pipeline.revsimp();
    const auto simp_gates = pipeline.reversible().num_gates();
    pipeline.rptm().tpar();
    const auto stats = pipeline.ps();
    const double elapsed_ms = elapsed_ms_since( start );

    std::printf( "%-4u %-10zu %-10zu %-9llu %-9llu %-8llu %-7llu %-7llu %-10.2f\n", n,
                 tbs_gates, simp_gates,
                 static_cast<unsigned long long>( stats.t_count ),
                 static_cast<unsigned long long>( stats.t_depth ),
                 static_cast<unsigned long long>( stats.cnot_count ),
                 static_cast<unsigned long long>( stats.h_count ),
                 static_cast<unsigned long long>( stats.depth ), elapsed_ms );

    if ( n <= 6u && !pipeline.verify() )
    {
      std::printf( "VERIFICATION FAILED for n=%u\n", n );
      return 1;
    }
  }
  std::printf( "verification: hwb-4..6 quantum circuits equivalent to their permutations\n" );

  /* ---- E1b: pass-manager overhead vs the direct fluent flow ---- */

  std::printf( "\nE1b: pass-manager overhead vs direct fluent flow (uncached)\n" );
  std::printf( "%-4s %-6s %-12s %-12s %-10s\n", "N", "reps", "fluent-ms", "manager-ms",
               "overhead" );
  for ( uint32_t n = 4u; n <= 7u; ++n )
  {
    const uint32_t reps = n <= 6u ? 20u : 5u;

    const auto fluent_start = clock_type::now();
    for ( uint32_t r = 0u; r < reps; ++r )
    {
      flow pipeline;
      pipeline.revgen_hwb( n ).tbs().revsimp().rptm().tpar().ps();
    }
    const double fluent_ms = elapsed_ms_since( fluent_start ) / reps;

    pass_manager uncached( /*enable_cache=*/false );
    const auto spec = parse_pipeline( eq5_spec( n ) );
    const auto manager_start = clock_type::now();
    for ( uint32_t r = 0u; r < reps; ++r )
    {
      uncached.run( spec );
    }
    const double manager_ms = elapsed_ms_since( manager_start ) / reps;

    std::printf( "%-4u %-6u %-12.3f %-12.3f %+.1f%%\n", n, reps, fluent_ms, manager_ms,
                 fluent_ms > 0.0 ? 100.0 * ( manager_ms - fluent_ms ) / fluent_ms : 0.0 );
  }

  /* ---- E1c: compilation-cache hit/miss timings ---- */

  std::printf( "\nE1c: compilation cache (second identical run served from cache)\n" );
  std::printf( "%-4s %-12s %-12s %-9s\n", "N", "miss-ms", "hit-ms", "speedup" );
  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    pass_manager cached;
    const auto spec = parse_pipeline( eq5_spec( n ) );
    const auto miss = cached.run( spec );
    const auto hit = cached.run( spec );
    if ( miss.cache_hit || !hit.cache_hit )
    {
      std::printf( "CACHE MISBEHAVED for n=%u\n", n );
      return 1;
    }
    std::printf( "%-4u %-12.3f %-12.3f %8.0fx\n", n, miss.total_ms, hit.total_ms,
                 hit.total_ms > 0.0 ? miss.total_ms / hit.total_ms : 0.0 );
  }

  /* ---- E1d: erase-heavy revsimp, legacy copy-rebuild vs rewriter ---- */

  std::printf( "\nE1d: revsimp on erase-heavy input (legacy copy-rebuild vs IR rewriter)\n" );
  std::printf( "%-7s %-12s %-12s %-9s\n", "gates", "legacy-ms", "rewriter-ms", "speedup" );
  const auto microbench_input = make_erase_heavy_circuit( 10u, 300u, 0xe1du );

  constexpr uint32_t legacy_reps = 2u;
  const auto legacy_start = clock_type::now();
  auto legacy_result = reference::revsimp( microbench_input );
  for ( uint32_t rep = 1u; rep < legacy_reps; ++rep )
  {
    legacy_result = reference::revsimp( microbench_input );
  }
  const double legacy_ms = elapsed_ms_since( legacy_start ) / legacy_reps;

  constexpr uint32_t rewriter_reps = 5u;
  const auto rewriter_start = clock_type::now();
  size_t rewriter_gates = 0u;
  for ( uint32_t rep = 0u; rep < rewriter_reps; ++rep )
  {
    rev_circuit scratch( microbench_input );
    revsimp_in_place( scratch );
    rewriter_gates = scratch.num_gates();
  }
  const double rewriter_ms = elapsed_ms_since( rewriter_start ) / rewriter_reps;

  const double speedup = rewriter_ms > 0.0 ? legacy_ms / rewriter_ms : 0.0;
  std::printf( "%-7zu %-12.3f %-12.3f %8.1fx\n", microbench_input.num_gates(), legacy_ms,
               rewriter_ms, speedup );
  std::printf( "  residual gates: legacy=%zu rewriter=%zu\n", legacy_result.num_gates(),
               rewriter_gates );
  /* timing assertions live in the tracked BENCH_eq5.json metric, not in
   * the exit code -- a wall-clock gate would flake on loaded CI runners
   * and sanitizer builds */
  std::printf( "  requirement (>= 1.5x): %s\n", speedup >= 1.5 ? "PASS" : "WARN" );

  /* per-pass breakdown of the paper's hwb-4 instance */
  pass_manager manager;
  std::printf( "\nper-pass breakdown (hwb-4):\n%s",
               format_report( manager.run( eq5_spec( 4u ) ) ).c_str() );

  /* ---- machine-readable record for cross-PR tracking ---- */

  std::FILE* json = std::fopen( "BENCH_eq5.json", "w" );
  if ( json == nullptr )
  {
    std::printf( "could not open BENCH_eq5.json for writing\n" );
    return 1;
  }
  std::fprintf( json, "{\n  \"experiment\": \"eq5_pipeline\",\n  %s,\n  \"sizes\": [\n",
                telemetry::bench_metadata_json().c_str() );
  pass_manager json_manager( /*enable_cache=*/false );
  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    const auto result = json_manager.run( eq5_spec( n ) );
    std::fprintf( json, "    { \"n\": %u, \"total_ms\": %.3f, \"passes\": [\n", n,
                  result.total_ms );
    for ( size_t p = 0u; p < result.reports.size(); ++p )
    {
      const auto& report = result.reports[p];
      std::fprintf( json,
                    "      { \"name\": \"%s\", \"ms\": %.3f, \"gates_before\": %llu, "
                    "\"gates_after\": %llu }%s\n",
                    report.name.c_str(), report.elapsed_ms,
                    static_cast<unsigned long long>( report.gates_before ),
                    static_cast<unsigned long long>( report.gates_after ),
                    p + 1u < result.reports.size() ? "," : "" );
    }
    std::fprintf( json, "    ] }%s\n", n < 8u ? "," : "" );
  }
  std::fprintf( json,
                "  ],\n  \"revsimp_microbench\": { \"gates\": %zu, \"legacy_ms\": %.3f, "
                "\"rewriter_ms\": %.3f, \"speedup\": %.2f }\n}\n",
                microbench_input.num_gates(), legacy_ms, rewriter_ms, speedup );
  std::fclose( json );
  std::printf( "\nwrote BENCH_eq5.json\n" );
  return 0;
}
