/*! \file bench_eq5_pipeline.cpp
 *  \brief Experiment E1: the paper's Eq. (5) RevKit pipeline.
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  Reproduces the command sequence for the paper's hwb-4 instance and
 *  sweeps the hidden-weighted-bit family to larger sizes.  The paper
 *  prints final circuit statistics (`ps -c`); we report the same
 *  numbers for every pipeline stage plus wall-clock compile time.
 */
#include "core/flow.hpp"

#include <chrono>
#include <cstdio>

int main()
{
  using namespace qda;
  using clock = std::chrono::steady_clock;

  std::printf( "E1: revgen --hwb N; tbs; revsimp; rptm; tpar; ps -c\n" );
  std::printf( "%-4s %-10s %-10s %-9s %-9s %-8s %-7s %-7s %-10s\n", "N", "tbs-gates",
               "simp-gates", "T-count", "T-depth", "CNOT", "H", "depth", "compile-ms" );

  for ( uint32_t n = 4u; n <= 8u; ++n )
  {
    const auto start = clock::now();
    flow pipeline;
    pipeline.revgen_hwb( n ).tbs();
    const auto tbs_gates = pipeline.reversible().num_gates();
    pipeline.revsimp();
    const auto simp_gates = pipeline.reversible().num_gates();
    pipeline.rptm().tpar();
    const auto stats = pipeline.ps();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>( clock::now() - start ).count();

    std::printf( "%-4u %-10zu %-10zu %-9llu %-9llu %-8llu %-7llu %-7llu %-10.2f\n", n,
                 tbs_gates, simp_gates,
                 static_cast<unsigned long long>( stats.t_count ),
                 static_cast<unsigned long long>( stats.t_depth ),
                 static_cast<unsigned long long>( stats.cnot_count ),
                 static_cast<unsigned long long>( stats.h_count ),
                 static_cast<unsigned long long>( stats.depth ), elapsed_ms );

    if ( n <= 6u && !pipeline.verify() )
    {
      std::printf( "VERIFICATION FAILED for n=%u\n", n );
      return 1;
    }
  }
  std::printf( "verification: hwb-4..6 quantum circuits equivalent to their permutations\n" );
  return 0;
}
