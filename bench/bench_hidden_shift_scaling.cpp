/*! \file bench_hidden_shift_scaling.cpp
 *  \brief Experiment E8: hidden shift resource scaling (Fig. 3 template).
 *
 *  Scales random Maiorana-McFarland instances from 4 to 16 variables
 *  and reports compiled circuit resources plus the classical/quantum
 *  query separation the problem is famous for: the quantum algorithm
 *  makes exactly 2 oracle queries, the classical baseline needs
 *  exponentially many.
 */
#include "core/bent.hpp"
#include "core/hidden_shift.hpp"
#include "kernel/spectral.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  std::printf( "E8: hidden shift scaling over 2n variables\n" );
  std::printf( "%-5s %-7s %-7s %-7s %-6s %-7s %-16s %-10s %-9s\n", "2n", "qubits", "gates",
               "depth", "2q", "quant", "classical-qrs", "sampling", "recovered" );

  bool all_ok = true;
  for ( uint32_t half = 2u; half <= 8u; ++half )
  {
    const auto f = mm_bent_function::random( half, half * 17u + 1u );
    const uint64_t shift = ( uint64_t{ 0x5a5a5a } >> half ) & ( f.to_truth_table().num_bits() - 1u );
    const auto circuit = hidden_shift_circuit_mm( f, shift );
    const auto stats = compute_statistics( circuit );

    /* classical baselines on the explicit tables */
    const auto table = f.to_truth_table();
    const auto g = shift_function( table, shift );
    const auto [classical_shift, classical_queries] = classical_hidden_shift( table, g );
    const auto [sampling_shift, sampling_queries] =
        classical_hidden_shift_sampling( table, g, 7u );

    /* the quantum algorithm makes exactly one U_g and one U_f~ query */
    constexpr uint64_t quantum_queries = 2u;

    bool recovered = true;
    if ( 2u * half <= 12u )
    {
      recovered = solve_hidden_shift( circuit ) == shift;
    }
    all_ok = all_ok && recovered && classical_shift == shift && sampling_shift == shift;

    std::printf( "%-5u %-7u %-7llu %-7llu %-6llu %-7llu %-16llu %-10llu %-9s\n", 2u * half,
                 stats.num_qubits, static_cast<unsigned long long>( stats.num_gates ),
                 static_cast<unsigned long long>( stats.depth ),
                 static_cast<unsigned long long>( stats.two_qubit_count ),
                 static_cast<unsigned long long>( quantum_queries ),
                 static_cast<unsigned long long>( classical_queries ),
                 static_cast<unsigned long long>( sampling_queries ),
                 2u * half <= 12u ? ( recovered ? "yes" : "NO" ) : "(n/a)" );
  }
  std::printf( "\nreading: quantum query count is constant (2); the classical baseline\n"
               "grows exponentially -- the separation motivating the algorithm.\n" );
  return all_ok ? 0 : 1;
}
