/*! \file bench_clifford_scale.cpp
 *  \brief Experiment E11 (extension): hidden shift at stabilizer scale.
 *
 *  The paper's Sec. VI cites Bravyi-Gosset [72], who study hidden shift
 *  circuits precisely because they are dominated by Clifford gates and
 *  hence classically simulable far beyond the state-vector limit.  The
 *  plain inner-product instances are entirely Clifford, so our CHP
 *  tableau backend recovers shifts on hundreds of qubits -- while the
 *  state-vector backend caps out below 30.
 */
#include "core/hidden_shift.hpp"
#include "simulator/stabilizer.hpp"

#include <chrono>
#include <cstdio>
#include <random>

int main()
{
  using namespace qda;
  using clock = std::chrono::steady_clock;

  std::printf( "E11: Clifford hidden shift on the stabilizer backend\n" );
  std::printf( "%-7s %-8s %-8s %-12s %-10s\n", "qubits", "gates", "2q", "solve-ms", "recovered" );

  bool all_ok = true;
  std::mt19937_64 rng( 2018u );
  for ( const uint32_t half : { 4u, 8u, 16u, 32u, 64u, 128u } )
  {
    std::vector<bool> shift( 2u * half );
    for ( auto&& bit : shift )
    {
      bit = ( rng() & 1u ) != 0u;
    }
    const auto circuit = clifford_hidden_shift_circuit( half, shift );
    const auto stats = compute_statistics( circuit );

    const auto start = clock::now();
    const auto recovered = solve_hidden_shift_stabilizer( circuit );
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>( clock::now() - start ).count();

    const bool ok = recovered == shift;
    all_ok = all_ok && ok;
    std::printf( "%-7u %-8llu %-8llu %-12.2f %-10s\n", 2u * half,
                 static_cast<unsigned long long>( stats.num_gates ),
                 static_cast<unsigned long long>( stats.two_qubit_count ), elapsed_ms,
                 ok ? "yes" : "NO" );
  }
  std::printf( "\nreading: all-Clifford hidden shift instances scale to hundreds of qubits\n"
               "classically (paper ref [72]); the state-vector backend stops below 30.\n" );
  return all_ok ? 0 : 1;
}
