/*! \file compile_server_demo.cpp
 *  \brief Compilation as a service: many concurrent spec-shaped
 *         requests against one compile server.
 *
 *  Four client threads push a mixed stream of Eq. (5)-style pipelines
 *  (hwb 3..5, assorted optimization tails, messy spellings included) at
 *  a `compile_server` and print what the serving layer amortized away:
 *  structurally identical requests dedup into one cache entry, racing
 *  identical requests coalesce onto one in-flight compilation, and
 *  sibling pipelines resume from shared pass prefixes instead of
 *  recompiling from scratch.
 *
 *  Observability: `--trace out.json` writes a Chrome trace with one
 *  `server.job` span per executed compilation and `--report` prints the
 *  span summary plus the metrics table (queue-wait histogram included).
 */
#include "server/compile_server.hpp"
#include "telemetry/session.hpp"

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

int main( int argc, char** argv )
{
  using namespace qda;
  using namespace qda::server;

  telemetry::session session( telemetry::session_options::from_cli( argc, argv ) );

  server_options options;
  options.num_workers = 4u;
  compile_server server( options );

  /* the request mix: canonical spellings, messy respellings of the same
   * pipelines, and siblings sharing the 4-pass Eq. (5) prefix */
  const std::vector<std::string> stream = {
    "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps",
    "revgen --hwb 4; tbs; revsimp; rptm; peephole; ps",
    " revgen  --hwb 4 ;; tbs ;\n revsimp ; rptm; tpar; ps",
    "revgen --hwb 3; tbs; revsimp",
    "revgen --hwb 3; tbs ; revsimp ;",
    "revgen --hwb 5; tbs; revsimp; rptm",
    "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps",
    "revgen --hwb 5; tbs; revsimp; rptm; tpar",
  };

  constexpr size_t rounds = 8u;
  std::vector<std::thread> clients;
  clients.reserve( 4u );
  for ( size_t c = 0u; c < 4u; ++c )
  {
    clients.emplace_back( [&, c] {
      for ( size_t r = 0u; r < rounds; ++r )
      {
        std::vector<std::future<compile_response>> futures;
        futures.reserve( stream.size() );
        for ( size_t i = c; i < stream.size(); i += 2u )
        {
          futures.push_back( server.submit( stream[( i + r ) % stream.size()] ) );
        }
        for ( auto& future : futures )
        {
          future.get();
        }
      }
    } );
  }
  for ( auto& client : clients )
  {
    client.join();
  }

  /* one representative response, served from the warm cache */
  const auto response = server.submit( stream[0] ).get();
  std::printf( "spec: %s\n", stream[0].c_str() );
  std::printf( "  served %s in %.3f ms\n",
               response.cache_hit ? "from cache" : "by compilation", response.total_ms );
  std::printf( "%s\n", format_cost_table( *response.result ).c_str() );

  server.shutdown();
  std::printf( "%s", format_server_report( server.statistics() ).c_str() );
  return 0;
}
