/*! \file quickstart.cpp
 *  \brief Quickstart: compile and run the paper's Fig. 4 hidden shift demo.
 *
 *  Mirrors the ProjectQ listing of the paper line by line:
 *
 *      def f(a, b, c, d): return (a and b) ^ (c and d)
 *      with Compute(eng): All(H); X | x1
 *      PhaseOracle(f) | qubits
 *      Uncompute(eng)
 *      PhaseOracle(f) | qubits    # f is self-dual
 *      All(H) | qubits
 *      Measure | qubits
 *
 *  and prints "Shift is 1" from the noiseless simulator backend.
 */
#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "kernel/expression.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  /* the phase function of paper Fig. 4 */
  const auto f = boolean_expression::parse( "(a and b) ^ (c and d)" );

  main_engine eng( 4u );
  const std::vector<uint32_t> qubits{ 0u, 1u, 2u, 3u };

  /* with Compute(eng): All(H) | qubits; X | x1  (the shift s = 1) */
  {
    auto computed = eng.compute();
    eng.all_h();
    eng.x( 0u );
  }
  phase_oracle( eng, f, qubits ); /* PhaseOracle(f) | qubits */
  eng.uncompute();                /* Uncompute(eng) */

  phase_oracle( eng, f, qubits ); /* f equals its own dual */
  eng.all_h();
  eng.measure_all();

  const uint64_t shift = eng.run();
  std::printf( "Shift is %llu\n", static_cast<unsigned long long>( shift ) );

  const auto stats = compute_statistics( eng.circuit() );
  std::printf( "circuit: %s\n", format_statistics( stats ).c_str() );
  return shift == 1u ? 0 : 1;
}
