/*! \file oracle_compilation.cpp
 *  \brief Automatic oracle compilation: predicate -> Clifford+T -> QASM.
 *
 *  Demonstrates the EDA flow of paper Sec. V on a free-form Boolean
 *  predicate: ESOP-based reversible synthesis of the Bennett embedding
 *  |x>|y> -> |x>|y xor f(x)>, simplification, relative-phase Toffoli
 *  mapping to Clifford+T, T-count optimization, and OpenQASM export.
 */
#include "esop/esop.hpp"
#include "kernel/expression.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/phase_folding.hpp"
#include "optimization/revsimp.hpp"
#include "quantum/qasm.hpp"
#include "synthesis/esop_based.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto predicate =
      boolean_expression::parse( "(a & b) | (!c & d) ^ (a and not d)" );
  const auto f = predicate.to_truth_table();
  std::printf( "predicate: %s\n", predicate.to_string().c_str() );

  const auto cover = esop_for_function( f );
  std::printf( "ESOP cover: %zu cubes, %llu literals\n", cover.size(),
               static_cast<unsigned long long>( esop_literal_count( cover ) ) );

  auto reversible = esop_based_synthesis( f );
  std::printf( "reversible circuit: %zu MCT gates on %u lines\n", reversible.num_gates(),
               reversible.num_lines() );
  reversible = revsimp( reversible );
  std::printf( "after revsimp: %zu MCT gates\n", reversible.num_gates() );

  const auto mapped = map_to_clifford_t( reversible );
  const auto optimized = phase_folding( mapped.circuit );
  std::printf( "Clifford+T: %s\n", format_statistics( compute_statistics( optimized ) ).c_str() );

  std::printf( "---- OpenQASM 2.0 ----\n%s", write_qasm( optimized ).c_str() );
  return 0;
}
