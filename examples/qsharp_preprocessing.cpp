/*! \file qsharp_preprocessing.cpp
 *  \brief The paper's Q# tool flow (Sec. VIII): RevKit as a pre-processor.
 *
 *  RevKit compiles the permutation pi = [0,2,3,5,7,1,4,6] into a
 *  Clifford+T circuit and emits it as native Q# code -- the
 *  Microsoft.Quantum.PermOracle namespace of paper Fig. 10, including
 *  the BentFunctionImpl helper that conjugates the CZ ladder with the
 *  (Adjoint) PermutationOracle.
 */
#include "core/oracles.hpp"
#include "mapping/clifford_t.hpp"
#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "quantum/qsharp.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto pi = paper_fig7_permutation();
  const auto reversible = transformation_based_synthesis( pi );
  const auto mapped = map_to_clifford_t( reversible );
  const auto polished = peephole_optimize( phase_folding( mapped.circuit ) );

  std::printf( "// pre-processing: pi = [0,2,3,5,7,1,4,6] -> %zu Clifford+T gates\n",
               polished.num_gates() );
  std::printf( "%s", write_qsharp_perm_oracle_namespace( polished, 3u ).c_str() );
  return 0;
}
