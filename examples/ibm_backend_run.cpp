/*! \file ibm_backend_run.cpp
 *  \brief Switching the backend to the (modeled) IBM Quantum Experience.
 *
 *  The paper notes that changing two lines of ProjectQ code retargets
 *  the Fig. 4 program from the local simulator to the IBM QE chip.
 *  Here the same hidden shift circuit is routed onto the 5-qubit IBM
 *  QX4 coupling map and executed under the calibrated noise model; the
 *  histogram (paper Fig. 6) shows the correct shift dominating.
 */
#include "core/hidden_shift.hpp"
#include "core/ibm_backend.hpp"
#include "simulator/statevector.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto f = inner_product_function( 2u, /*interleaved=*/true );
  const auto logical = hidden_shift_circuit( { f, 1u } );

  const auto execution = run_on_ibm_model( logical, coupling_map::ibm_qx4(),
                                           noise_model::ibm_qx4_early2018(), 1024u, 2018u );

  std::printf( "device: ibmqx4, shots: 1024, added swaps: %llu, direction fixes: %llu\n",
               static_cast<unsigned long long>( execution.added_swaps ),
               static_cast<unsigned long long>( execution.added_direction_fixes ) );
  std::printf( "%-8s %s\n", "outcome", "probability" );
  uint64_t best_outcome = 0u;
  uint64_t best_count = 0u;
  for ( uint64_t outcome = 0u; outcome < 16u; ++outcome )
  {
    const auto it = execution.counts.find( outcome );
    const uint64_t count = it == execution.counts.end() ? 0u : it->second;
    if ( count > best_count )
    {
      best_count = count;
      best_outcome = outcome;
    }
    std::printf( "%-8s %.4f\n", format_outcome( outcome, 4u ).c_str(),
                 static_cast<double>( count ) / 1024.0 );
  }
  std::printf( "most frequent outcome: %s (the hidden shift is 0001)\n",
               format_outcome( best_outcome, 4u ).c_str() );
  return best_outcome == 1u ? 0 : 1;
}
