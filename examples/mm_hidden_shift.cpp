/*! \file mm_hidden_shift.cpp
 *  \brief The paper's Fig. 7 scenario: hidden shift for a
 *         Maiorana-McFarland bent function with a nontrivial permutation.
 *
 *  f(x, y) = x . pi(y) with pi = [0, 2, 3, 5, 7, 1, 4, 6] on six qubits
 *  (x on even, y on odd lines) and hidden shift s = 5.  The permutation
 *  oracle for pi is compiled with transformation-based synthesis, its
 *  inverse with decomposition-based synthesis wrapped in a Dagger block
 *  -- exactly the `PermutationOracle(pi, synth=revkit.dbs)` choice of
 *  the paper.  The final circuit exhibits the four dashed permutation
 *  boxes of Fig. 8.
 */
#include "core/bent.hpp"
#include "core/hidden_shift.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  const auto f = mm_bent_function::paper_fig7();
  constexpr uint64_t hidden_shift = 5u;

  const auto circuit = hidden_shift_circuit_mm( f, hidden_shift,
                                                permutation_synthesis::tbs,
                                                permutation_synthesis::dbs );

  const uint64_t recovered = solve_hidden_shift( circuit );
  std::printf( "Shift is %llu\n", static_cast<unsigned long long>( recovered ) );

  const auto stats = compute_statistics( circuit );
  std::printf( "circuit: %s\n", format_statistics( stats ).c_str() );

  /* sweep all 64 shifts to show the recovery is exact everywhere */
  uint32_t correct = 0u;
  for ( uint64_t s = 0u; s < 64u; ++s )
  {
    if ( solve_hidden_shift( hidden_shift_circuit_mm( f, s ) ) == s )
    {
      ++correct;
    }
  }
  std::printf( "all-shift sweep: %u/64 recovered exactly\n", correct );
  return recovered == hidden_shift && correct == 64u ? 0 : 1;
}
