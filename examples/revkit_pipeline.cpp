/*! \file revkit_pipeline.cpp
 *  \brief The RevKit shell pipeline of paper Eq. (5), programmatically.
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  Generates the 4-variable hidden-weighted-bit permutation,
 *  synthesizes, simplifies, maps to Clifford+T with relative-phase
 *  Toffolis, folds phases and prints statistics -- then verifies the
 *  final quantum circuit against the original permutation.
 */
#include "core/flow.hpp"
#include "pipeline/pass_manager.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  /* the shell string itself, through the pass manager */
  pass_manager manager;
  const auto compiled = manager.run( "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps" );
  std::printf( "%s\n", format_report( compiled ).c_str() );

  /* the same pipeline through the fluent flow API */
  flow pipeline;
  pipeline.revgen_hwb( 4u ); /* revgen --hwb 4 */
  pipeline.tbs();            /* tbs */
  std::printf( "after tbs:     %zu MCT gates\n", pipeline.reversible().num_gates() );
  pipeline.revsimp();        /* revsimp */
  std::printf( "after revsimp: %zu MCT gates\n", pipeline.reversible().num_gates() );
  pipeline.rptm();           /* rptm */
  std::printf( "after rptm:    %s\n", pipeline.ps_line().c_str() );
  pipeline.tpar();           /* tpar */
  std::printf( "after tpar:    %s\n", pipeline.ps_line().c_str() ); /* ps -c */

  const bool ok = pipeline.verify();
  std::printf( "verification: %s\n", ok ? "equivalent" : "MISMATCH" );
  return ok ? 0 : 1;
}
