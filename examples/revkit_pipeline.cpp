/*! \file revkit_pipeline.cpp
 *  \brief The RevKit shell pipeline of paper Eq. (5), programmatically.
 *
 *      revgen --hwb N; tbs; revsimp; rptm; tpar; ps -c
 *
 *  Generates the N-variable hidden-weighted-bit permutation (default
 *  N = 4, `--hwb N` to change), synthesizes, simplifies, maps to
 *  Clifford+T with relative-phase Toffolis, folds phases and prints the
 *  per-pass cost-delta table -- then verifies the final quantum circuit
 *  against the original permutation.
 *
 *  Observability: `--trace out.json` writes a Chrome trace (open in
 *  chrome://tracing or https://ui.perfetto.dev) and `--report` prints
 *  the hierarchical span summary plus the metrics table.
 */
#include "core/flow.hpp"
#include "pipeline/pass_manager.hpp"
#include "telemetry/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

int main( int argc, char** argv )
{
  using namespace qda;

  telemetry::session session( telemetry::session_options::from_cli( argc, argv ) );

  uint32_t hwb_size = 4u;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--hwb" ) == 0 && i + 1 < argc )
    {
      hwb_size = static_cast<uint32_t>( std::atoi( argv[++i] ) );
    }
    else
    {
      std::fprintf( stderr, "usage: %s [--hwb N] [--trace out.json] [--report]\n", argv[0] );
      return 2;
    }
  }
  if ( hwb_size < 1u || hwb_size > 10u )
  {
    std::fprintf( stderr, "revkit_pipeline: --hwb N must be in [1, 10]\n" );
    return 2;
  }

  /* the shell string itself, through the pass manager */
  const std::string spec = "revgen --hwb " + std::to_string( hwb_size ) +
                           "; tbs; revsimp; rptm; tpar; ps";
  pass_manager manager;
  const auto compiled = manager.run( spec );
  std::printf( "%s\n", format_report( compiled ).c_str() );
  std::printf( "%s\n", format_cost_table( compiled ).c_str() );

  /* the same pipeline through the fluent flow API */
  flow pipeline;
  pipeline.revgen_hwb( hwb_size ); /* revgen --hwb N */
  pipeline.tbs();                  /* tbs */
  std::printf( "after tbs:     %zu MCT gates\n", pipeline.reversible().num_gates() );
  pipeline.revsimp();              /* revsimp */
  std::printf( "after revsimp: %zu MCT gates\n", pipeline.reversible().num_gates() );
  pipeline.rptm();                 /* rptm */
  std::printf( "after rptm:    %s\n", pipeline.ps_line().c_str() );
  pipeline.tpar();                 /* tpar */
  std::printf( "after tpar:    %s\n", pipeline.ps_line().c_str() ); /* ps -c */

  const bool ok = pipeline.verify();
  std::printf( "verification: %s\n", ok ? "equivalent" : "MISMATCH" );
  return ok ? 0 : 1;
}
