/*! \file grover_search.cpp
 *  \brief Grover search with an automatically compiled predicate oracle.
 *
 *  Paper Sec. I: Grover's algorithm needs its defining predicate
 *  "recognized efficiently" as a reversible circuit, and the overhead
 *  of compiling it "can be quite substantial" [6].  Here a SAT-style
 *  predicate is compiled by the same ESOP phase-oracle machinery as the
 *  hidden shift demos and amplified to near-certainty.
 */
#include "core/grover.hpp"
#include "kernel/expression.hpp"
#include "simulator/statevector.hpp"

#include <cstdio>

int main()
{
  using namespace qda;

  /* a small constraint-satisfaction predicate over 5 variables */
  const auto predicate = boolean_expression::parse(
      "(a | b) & (!b | c) & (c ^ d) & (d | !e) & (a & e)" );
  const auto f = predicate.to_truth_table();

  std::printf( "predicate: %s\n", predicate.to_string().c_str() );
  std::printf( "marked elements: %llu of %llu\n",
               static_cast<unsigned long long>( f.count_ones() ),
               static_cast<unsigned long long>( f.num_bits() ) );

  const uint32_t iterations = grover_optimal_iterations( f );
  std::printf( "optimal iterations: %u\n", iterations );
  for ( uint32_t round = 0u; round <= iterations + 2u; ++round )
  {
    std::printf( "  success probability after %u iteration(s): %.4f\n", round,
                 grover_success_probability( f, round ) );
  }

  const uint64_t found = grover_search( f );
  std::printf( "sampled element: %s -> f = %d\n", format_outcome( found, 5u ).c_str(),
               f.get_bit( found ) ? 1 : 0 );
  return f.get_bit( found ) ? 0 : 1;
}
